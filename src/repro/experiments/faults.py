"""Deterministic fault injection for the sweep engine.

The fault-tolerant executor in :mod:`repro.experiments.sweep` has four
recovery paths — bounded retries for transient exceptions, per-run
wall-clock timeouts, pool rebuild (and eventually serial degradation)
after worker death, and quarantine-plus-recompute for corrupted cache
records — and every one of them must be exercised *reproducibly*: a chaos
test that only fails one run in fifty is worse than no test at all.

A :class:`FaultPlan` is a seeded, picklable description of which faults to
inject where.  The decision for a given (spec digest, attempt) pair is a
pure function of the plan — ``sha256(seed:digest:attempt)`` mapped to
``[0, 1)`` and compared against the configured rates — so the same plan
injects the same faults into the same runs on every host, every time,
regardless of worker scheduling.  By default a spec is only disturbed on
its first ``max_faults_per_spec`` attempts, so any retry budget ≥ that
bound is guaranteed to converge and the chaos suites can assert the
strongest possible property: the final stat fingerprints are
**bit-identical** to an undisturbed serial sweep.

Fault kinds:

``kill``
    The worker process calls ``os._exit`` mid-batch, which surfaces to the
    parent as ``BrokenProcessPool`` on every in-flight future (exactly
    like an OOM kill).  Never injected in-process.
``transient``
    Raises :class:`TransientFault` inside the run — the model for flaky
    infrastructure (NFS hiccups, resource exhaustion) that a retry fixes.
``stall``
    Sleeps ``stall_seconds`` before simulating, so a per-run timeout
    expires and the parent must reclaim the worker.  Never injected
    in-process (there is nobody left to notice).
``corrupt``
    Truncates the cache record the engine just published (a torn write),
    exercising the quarantine + recompute path on the *next* sweep.
``interrupt_after``
    Parent-side: raise ``KeyboardInterrupt`` inside the engine loop after
    N specs have completed — a deterministic stand-in for Ctrl-C /
    ``SIGKILL`` mid-sweep, used to test ``--resume``.

Service-layer fault points (``repro serve``, :mod:`repro.service`):

``serve_kill``
    ``os._exit`` the *server* process in the crash window between a job's
    fsynced ``running`` journal append and its cache publish — the run
    never completed, so a restarted server must re-execute it exactly
    once.
``serve_kill_post``
    ``os._exit`` the server in the opposite window: after the result was
    atomically published to the cache but before the job's ``done``
    journal append.  A restarted server replays the job as interrupted,
    re-enqueues it, and must complete it from the cache **without
    re-executing the simulation** — the no-duplicate-work guarantee.
``serve_stall``
    Sleep ``stall_seconds`` inside one HTTP handler thread, proving a
    slow client/request cannot block admissions, polling or health
    probes (the server is threaded).
``serve_corrupt``
    Tear the job-journal line that was just appended (a torn write in
    the middle of the journal), exercising the store's any-line
    corruption tolerance on the next replay.

Plans travel to pool workers inside the batch payload (not via globals),
and can be supplied to the real CLI through ``$REPRO_FAULTS`` (a JSON
object of constructor fields), which is how the CI chaos job disturbs an
ordinary ``repro sweep`` invocation.

Run ``python -m repro.experiments.faults`` for the self-checking chaos
smoke: a clean serial sweep, then a chaotic parallel sweep (kills,
transients, stalls, a deterministic mid-sweep interrupt, a corrupted
cache record) resumed to completion, asserting bit-identical
fingerprints throughout.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass
from typing import Dict, Optional

#: Environment variable holding a JSON ``FaultPlan`` for CLI-level chaos.
FAULTS_ENV_VAR = "REPRO_FAULTS"

#: Exit status used by injected worker kills (visible in chaos logs).
KILL_EXIT_CODE = 87


class TransientFault(RuntimeError):
    """The injected stand-in for a retryable infrastructure failure."""


class FaultInjectionError(ValueError):
    """A fault plan is malformed (unknown fields, bad rates)."""


@dataclass(frozen=True)
class FaultPlan:
    """Seeded, deterministic description of the faults to inject.

    ``kill``, ``transient`` and ``stall`` are per-(spec, attempt)
    probabilities drawn from one hash, so their sum must stay ≤ 1.
    ``corrupt`` is an independent per-spec probability applied to the
    first cache publish of a digest.  ``max_faults_per_spec`` bounds how
    many attempts of one spec may be disturbed (attempts at or beyond the
    bound always run clean), which is what makes recovery provable.
    """

    seed: int = 1
    kill: float = 0.0
    transient: float = 0.0
    stall: float = 0.0
    corrupt: float = 0.0
    stall_seconds: float = 30.0
    max_faults_per_spec: int = 1
    interrupt_after: Optional[int] = None
    serve_kill: float = 0.0
    serve_kill_post: float = 0.0
    serve_stall: float = 0.0
    serve_corrupt: float = 0.0

    def __post_init__(self) -> None:
        for name in ("kill", "transient", "stall", "corrupt", "serve_kill",
                     "serve_kill_post", "serve_stall", "serve_corrupt"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise FaultInjectionError(
                    f"fault rate {name}={rate!r} must be within [0, 1]")
        if self.kill + self.transient + self.stall > 1.0:
            raise FaultInjectionError(
                "kill + transient + stall rates must sum to at most 1")
        if self.max_faults_per_spec < 0:
            raise FaultInjectionError("max_faults_per_spec must be >= 0")

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, doc: Dict) -> "FaultPlan":
        if not isinstance(doc, dict):
            raise FaultInjectionError(
                f"fault plan must be a JSON object, got {type(doc).__name__}")
        valid = {field for field in cls.__dataclass_fields__}
        unknown = sorted(set(doc) - valid)
        if unknown:
            raise FaultInjectionError(
                f"unknown fault plan field(s) {', '.join(unknown)}; "
                f"valid fields: {', '.join(sorted(valid))}")
        return cls(**doc)

    @classmethod
    def from_env(cls, environ=None) -> Optional["FaultPlan"]:
        """The ``$REPRO_FAULTS`` plan, or ``None`` when chaos is off."""
        raw = (environ if environ is not None else os.environ).get(
            FAULTS_ENV_VAR)
        if not raw:
            return None
        try:
            doc = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise FaultInjectionError(
                f"${FAULTS_ENV_VAR} is not valid JSON: {exc}") from exc
        return cls.from_dict(doc)

    # ------------------------------------------------------------------
    def _draw(self, digest: str, attempt: int, channel: str = "run") -> float:
        payload = f"{self.seed}:{channel}:{digest}:{attempt}".encode()
        raw = int.from_bytes(hashlib.sha256(payload).digest()[:8], "big")
        return raw / float(1 << 64)

    def decide(self, digest: str, attempt: int) -> Optional[str]:
        """The fault (if any) for one attempt of one spec.

        Pure: the same (plan, digest, attempt) always decides the same
        fault, independent of process, host, or scheduling.
        """
        if attempt >= self.max_faults_per_spec:
            return None
        draw = self._draw(digest, attempt)
        if draw < self.kill:
            return "kill"
        if draw < self.kill + self.transient:
            return "transient"
        if draw < self.kill + self.transient + self.stall:
            return "stall"
        return None

    def should_corrupt(self, digest: str) -> bool:
        """Whether the first cache publish of ``digest`` gets torn."""
        return self.corrupt > 0 and \
            self._draw(digest, 0, channel="corrupt") < self.corrupt

    # ------------------------------------------------------------------
    # Service-layer fault points (repro.service)
    # ------------------------------------------------------------------
    def decide_serve_kill(self, digest: str, attempt: int) -> Optional[str]:
        """Which server-kill window (if any) fires for one job attempt.

        Pure, like :meth:`decide`: ``"pre"`` kills between the job's
        ``running`` journal append and its execution/cache publish,
        ``"post"`` kills after the cache publish but before the ``done``
        append.  ``max_faults_per_spec`` bounds the disturbance, so a
        restarted server is guaranteed to converge.
        """
        if attempt >= self.max_faults_per_spec:
            return None
        if self._draw(digest, attempt, channel="serve-kill") < self.serve_kill:
            return "pre"
        if self._draw(digest, attempt,
                      channel="serve-kill-post") < self.serve_kill_post:
            return "post"
        return None

    def apply_serve_kill(self, digest: str, attempt: int,
                         window: str) -> None:
        """``os._exit`` the server when the decided window matches."""
        if self.decide_serve_kill(digest, attempt) == window:
            os._exit(KILL_EXIT_CODE)

    def should_serve_stall(self, key: str) -> bool:
        """Whether one HTTP handler (keyed by request identity) stalls."""
        return self.serve_stall > 0 and \
            self._draw(key, 0, channel="serve-stall") < self.serve_stall

    def should_serve_corrupt(self, digest: str) -> bool:
        """Whether the job-journal record just appended for ``digest``
        gets torn (once per digest per plan)."""
        return self.serve_corrupt > 0 and \
            self._draw(digest, 0, channel="serve-corrupt") < self.serve_corrupt

    # ------------------------------------------------------------------
    def apply(self, digest: str, attempt: int, *,
              in_worker: bool) -> None:
        """Inject the decided fault, if any, at the top of a run.

        ``kill`` and ``stall`` are only meaningful inside a pool worker:
        in-process (serial / degraded execution) they are suppressed, so
        graceful degradation always makes forward progress.
        """
        fault = self.decide(digest, attempt)
        if fault is None:
            return
        if fault == "transient":
            raise TransientFault(
                f"injected transient fault (spec {digest[:12]}, "
                f"attempt {attempt})")
        if not in_worker:
            return
        if fault == "kill":
            os._exit(KILL_EXIT_CODE)
        if fault == "stall":
            import time
            time.sleep(self.stall_seconds)


def corrupt_record(path) -> None:
    """Tear a cache record the way a crashed non-atomic writer would:
    truncate it to a prefix that no longer parses as JSON."""
    from pathlib import Path

    target = Path(path)
    data = target.read_bytes()
    target.write_bytes(data[:max(1, len(data) // 3)])


# ----------------------------------------------------------------------
# Chaos smoke (python -m repro.experiments.faults): proves the acceptance
# criterion end to end and doubles as the CI chaos driver.
# ----------------------------------------------------------------------
def chaos_smoke(cache_dir, *, jobs: int = 2, out=None) -> int:
    """Clean serial sweep vs chaotic interrupted-and-resumed sweep.

    Returns 0 when every recovery path fired and the final fingerprints
    are bit-identical to the undisturbed serial run; raises otherwise.
    """
    import sys
    from pathlib import Path

    from repro.experiments.sweep import (ResultCache, RunPolicy, RunSpec,
                                         SweepEngine, SweepJournal)
    from repro.workloads.pagerank import PagerankWorkload
    from repro.workloads.synthetic import IndirectStreamWorkload

    out = out or sys.stdout
    cache_dir = Path(cache_dir)
    workloads = [IndirectStreamWorkload(n_indices=512, n_data=2048, seed=3),
                 PagerankWorkload(n_vertices=256, seed=3)]
    specs = [RunSpec.for_run(workload, mode, 4)
             for workload in workloads
             for mode in ("base", "imp", "swpref")]

    print(f"[chaos] {len(specs)} specs, jobs={jobs}", file=out)
    clean = SweepEngine(jobs=1).run(specs)
    golden = {spec.digest(): result.stats.fingerprint()
              for spec, result in clean.items()}
    print(f"[chaos] clean serial sweep done "
          f"({len(golden)} fingerprints)", file=out)

    # Chaos phase 1: kills + transients + stalls under a timeout, with a
    # deterministic interrupt partway through — the "kill -9 mid-sweep".
    plan = FaultPlan(seed=11, kill=0.25, transient=0.25, stall=0.1,
                     corrupt=0.2, stall_seconds=20.0,
                     interrupt_after=max(2, len(specs) // 2))
    policy = RunPolicy(timeout=8.0, retries=3, backoff=0.05)
    journal_path = cache_dir / "journal-chaos.jsonl"
    interrupted = False
    try:
        SweepEngine(jobs=jobs, cache=ResultCache(cache_dir), policy=policy,
                    faults=plan,
                    journal=SweepJournal(journal_path)).run(specs)
    except KeyboardInterrupt:
        interrupted = True
    if not interrupted:
        raise AssertionError("injected interrupt did not fire")
    journal = SweepJournal(journal_path, resume=True)
    print(f"[chaos] interrupted mid-sweep with "
          f"{len(journal.completed)} specs journalled", file=out)

    # Corrupt one completed cache record (a torn write the resumed sweep
    # must quarantine and recompute).
    records = sorted(path for path in cache_dir.glob("*.json"))
    if records:
        corrupt_record(records[0])
        print(f"[chaos] corrupted cache record {records[0].name}", file=out)

    # Chaos phase 2: resume. Same plan (attempt counters restart, but
    # max_faults_per_spec bounds total disturbance) minus the interrupt.
    resume_plan = FaultPlan(seed=11, kill=0.25, transient=0.25, stall=0.1,
                            corrupt=0.2, stall_seconds=20.0)
    cache = ResultCache(cache_dir)
    engine = SweepEngine(jobs=jobs, cache=cache, policy=policy,
                         faults=resume_plan, journal=journal)
    resumed = engine.run(specs)

    mismatched = [digest for digest in golden
                  if resumed_fp(resumed, digest) != golden[digest]]
    if mismatched:
        raise AssertionError(
            f"fingerprint mismatch after chaos for digests: "
            f"{', '.join(d[:12] for d in mismatched)}")
    print(f"[chaos] resumed sweep complete: {len(resumed)} results, "
          f"{engine.simulations_run} simulated, "
          f"{cache.quarantined} quarantined, fingerprints bit-identical",
          file=out)
    if cache.quarantined < 1:
        raise AssertionError("corrupted record was not quarantined")
    return 0


def resumed_fp(results, digest: str):
    for spec, result in results.items():
        if spec.digest() == digest:
            return result.stats.fingerprint()
    return None


def main(argv=None) -> int:
    import argparse
    import tempfile

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.faults",
        description="self-checking chaos smoke for the sweep engine")
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--cache-dir", default=None,
                        help="cache directory (default: a fresh temp dir)")
    args = parser.parse_args(argv)
    if args.cache_dir:
        return chaos_smoke(args.cache_dir, jobs=args.jobs)
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        return chaos_smoke(tmp, jobs=args.jobs)


if __name__ == "__main__":
    raise SystemExit(main())
