"""Parallel sweep engine with a persistent on-disk result cache.

The paper's evaluation is a large cross-product — ~10 workloads x 6+ modes
x {16, 64, 128, 256} cores — and each point is an independent, perfectly
deterministic simulation.  This module turns every simulation request into
a picklable, hashable :class:`RunSpec`, executes deduplicated specs across
a ``ProcessPoolExecutor`` worker pool, and memoises completed results in a
versioned on-disk cache so re-running any figure, table, or
``reproduce_paper.py`` only simulates what changed.

Design rules:

* **Specs, not objects, cross process boundaries.**  A ``RunSpec`` carries
  the workload's registry name + constructor parameters (seed included),
  the experiment mode, the core count, and the full IMP / system
  configuration.  Workers rebuild workloads and configs from the spec;
  live simulators, traces or memory images are never pickled.
* **Deterministic everywhere.**  All workload randomness derives from the
  seed inside the spec, so a spec simulates to bit-identical statistics
  regardless of process, worker count, or execution order.  The engine's
  regression tests assert serial and ``--jobs N`` sweeps produce identical
  stat fingerprints.
* **Per-worker trace-build memoisation.**  Specs are grouped into batches
  that share one (workload, parameters, core count); each batch runs on
  one worker with a single workload object, so the trace build is paid
  once per batch exactly like the serial runner pays it once per sweep.
* **Versioned cache records.**  Cache entries live under ``results/cache/``
  (by convention) as one JSON record per spec digest, carrying the schema
  version, the full spec, a statistics fingerprint, and the serialised
  result.  Any config field change changes the digest; a schema bump,
  spec-digest collision, fingerprint mismatch, or corrupted file is
  quarantined (``results/cache/quarantine/``) and treated as a miss, so
  the entry is recomputed and rewritten without aborting the sweep.
* **Failures are outcomes, not aborts.**  Worker death, per-run wall-clock
  timeouts and transient exceptions are distinguished, retried with
  exponential backoff under a :class:`RunPolicy`, and — only once the
  retry budget is exhausted — reported as structured
  :class:`FailureRecord` entries (``results/failures.json`` via
  :func:`write_failure_report`).  A broken worker pool is rebuilt, and
  after ``max_pool_restarts`` breakages the engine degrades to in-process
  serial execution instead of giving up.  Every completed spec is
  journalled (:class:`SweepJournal`, append-only JSONL under the cache
  directory) so an interrupted sweep resumes from where it died.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import tempfile
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor
from concurrent.futures import wait as futures_wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import (Callable, Dict, Iterable, List, Optional, Sequence,
                    Tuple)

from repro.core.config import IMPConfig
from repro.experiments.configs import experiment_config, scaled_config
from repro.experiments.faults import FaultPlan, TransientFault
from repro.sim.config import SystemConfig
from repro.sim.system import SimulationResult, run_workload
from repro.workloads import workload_from_spec
from repro.workloads.base import Workload, WorkloadSpecError

#: Bump when the record layout or the simulation semantics change in a way
#: that invalidates previously cached results.
#: v2: registry-driven configuration — ``SystemConfig`` gained the
#: ``hierarchy`` field (explicit level chains) and ``CoreStats`` gained
#: shared-L3 counters, so v1 records no longer describe the full spec.
#: v3: per-level prefetcher attachment — ``HierarchyConfig`` serialises an
#: ``attach`` list instead of ``prefetch_level`` (so v2 hierarchy-bearing
#: specs no longer parse into the same canonical form) and ``CoreStats``
#: records may carry dynamic ``lN_*`` counters for >3-level chains.
#: Stale v2 records self-heal: the version check treats them as misses
#: and quarantines them on first lookup.
CACHE_SCHEMA_VERSION = 3

#: Environment variable consulted when no explicit worker count is given.
JOBS_ENV_VAR = "REPRO_JOBS"

#: Subdirectory of the cache that holds quarantined (corrupt) records.
QUARANTINE_DIRNAME = "quarantine"

#: Schema tag of the structured end-of-sweep failure report.
FAILURE_REPORT_SCHEMA = "repro-failures-v1"

#: Schema tag of the append-only sweep journal.
JOURNAL_SCHEMA = "repro-sweep-journal-v1"


def _auto_jobs() -> int:
    """The ``jobs=0`` (auto) resolution: every CPU the host reports."""
    return max(1, os.cpu_count() or 1)


def resolve_jobs(jobs: Optional[int] = None, *, default: int = 1) -> int:
    """Resolve a worker count under one rule, everywhere.

    Precedence: an explicit ``jobs`` argument, else ``$REPRO_JOBS``, else
    ``default`` (1 for sweeps; ``repro bench --sweep`` passes 4).  On
    both explicit and env paths the value ``0`` means *auto* — one worker
    per CPU (``os.cpu_count()``).  An invalid explicit value (non-integer
    or negative) raises :class:`ValueError` with a clean message; an
    invalid ``$REPRO_JOBS`` only warns and falls through to ``default``,
    so a stale environment never aborts a sweep.
    """
    if jobs is not None:
        try:
            jobs = int(jobs)
        except (TypeError, ValueError):
            raise ValueError(
                f"invalid jobs value {jobs!r}: expected a non-negative "
                f"integer (0 = auto: one worker per CPU)") from None
        if jobs < 0:
            raise ValueError(
                f"invalid jobs value {jobs}: expected a non-negative "
                f"integer (0 = auto: one worker per CPU)")
        return _auto_jobs() if jobs == 0 else jobs
    env = os.environ.get(JOBS_ENV_VAR)
    if env:
        try:
            value = int(env)
        except ValueError:
            value = -1
        if value < 0:
            print(f"[sweep] warning: ignoring invalid "
                  f"{JOBS_ENV_VAR}={env!r} (expected a non-negative "
                  f"integer; 0 = auto); using {default} job(s)",
                  file=sys.stderr)
        else:
            return _auto_jobs() if value == 0 else value
    return max(1, default)


# ----------------------------------------------------------------------
# Canonical freezing of nested config dictionaries
# ----------------------------------------------------------------------
def _freeze(value):
    """Recursively convert dicts/lists into sorted, hashable tuples."""
    if isinstance(value, dict):
        return tuple(sorted((key, _freeze(val)) for key, val in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(item) for item in value)
    return value


def _thaw(value):
    """Inverse of :func:`_freeze` for dict-shaped tuples."""
    if isinstance(value, tuple):
        if all(isinstance(item, tuple) and len(item) == 2
               and isinstance(item[0], str) for item in value):
            return {key: _thaw(val) for key, val in value}
        return [_thaw(item) for item in value]
    return value


def _strip_result_neutral(doc: Dict) -> Dict:
    """Drop spec fields that provably never change simulation results.

    Currently exactly one: ``base_config.noc.kernel`` — the NoC
    reservation-kernel backend, whose implementations are contractually
    bit-identical (see :meth:`RunSpec.canonical_dict`).  Returns ``doc``
    itself when nothing needs stripping; copies the affected nesting
    levels (never mutates the input) otherwise, so record-stored specs
    can be normalised in place-free fashion.
    """
    base = doc.get("base_config")
    if isinstance(base, dict):
        noc = base.get("noc")
        if isinstance(noc, dict) and "kernel" in noc:
            doc = dict(doc)
            doc["base_config"] = base = dict(base)
            base["noc"] = {key: value for key, value in noc.items()
                           if key != "kernel"}
    return doc


# ----------------------------------------------------------------------
# RunSpec
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunSpec:
    """One fully described simulation point, hashable and picklable.

    ``workload_params``, ``imp_config`` and ``base_config`` are stored as
    canonically frozen (sorted, nested) tuples so that two specs built from
    equal configurations compare and hash equal, whatever dict ordering
    they were built from.
    """

    workload: str
    workload_params: Tuple
    mode: str
    n_cores: int
    imp_config: Tuple
    base_config: Tuple
    sw_prefetch_distance: int = 8

    # ------------------------------------------------------------------
    @classmethod
    def for_run(cls, workload: Workload, mode: str, n_cores: int,
                imp_config: Optional[IMPConfig] = None,
                base_config: Optional[SystemConfig] = None,
                sw_prefetch_distance: int = 8) -> "RunSpec":
        """Build the spec for one ``ExperimentRunner.run``-style request.

        ``imp_config=None`` and ``base_config=None`` are normalised to the
        defaults :func:`repro.experiments.configs.experiment_config` would
        resolve them to, so equivalent requests share one cache entry.

        Raises :class:`repro.workloads.base.WorkloadSpecError` when the
        workload cannot be reconstructed from plain parameters (the caller
        should then fall back to in-process execution).
        """
        from repro.registry import WORKLOADS

        name = getattr(workload, "name", None)
        if name not in WORKLOADS or type(workload) is not WORKLOADS.get(name).factory:
            raise WorkloadSpecError(
                f"workload {name!r} ({type(workload).__name__}) is not the "
                f"registered implementation; cannot spec-serialise it")
        resolved_base = (base_config or scaled_config(n_cores))
        if resolved_base.n_cores != n_cores:
            resolved_base = resolved_base.with_cores(n_cores)
        return cls(workload=name,
                   workload_params=_freeze(workload.spec_params()),
                   mode=mode, n_cores=n_cores,
                   imp_config=_freeze((imp_config or IMPConfig()).to_dict()),
                   base_config=_freeze(resolved_base.to_dict()),
                   sw_prefetch_distance=sw_prefetch_distance)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        return {
            "workload": self.workload,
            "workload_params": _thaw(self.workload_params),
            "mode": self.mode,
            "n_cores": self.n_cores,
            "imp_config": _thaw(self.imp_config),
            "base_config": _thaw(self.base_config),
            "sw_prefetch_distance": self.sw_prefetch_distance,
        }

    @classmethod
    def from_dict(cls, doc: Dict) -> "RunSpec":
        return cls(workload=doc["workload"],
                   workload_params=_freeze(doc["workload_params"]),
                   mode=doc["mode"], n_cores=doc["n_cores"],
                   imp_config=_freeze(doc["imp_config"]),
                   base_config=_freeze(doc["base_config"]),
                   sw_prefetch_distance=doc["sw_prefetch_distance"])

    def canonical_dict(self) -> Dict:
        """The spec's cache-identity form: :meth:`to_dict` minus fields
        that provably never change simulation results.

        The NoC reservation-kernel backend (``base_config.noc.kernel``) is
        stripped: every :data:`repro.registry.NOC_KERNELS` backend is
        contractually bit-identical (held to the reference by the
        randomized equivalence suite), and the ``$REPRO_NOC_KERNEL``
        override already swaps backends without touching the digest.
        Stripping the config spelling too keeps one digest per experiment
        whatever backend computes it — and keeps digests (and therefore
        cached results and sweep journals) from before the field existed
        valid.
        """
        doc = self.to_dict()
        return _strip_result_neutral(doc)

    def canonical_json(self) -> str:
        return json.dumps(self.canonical_dict(), sort_keys=True,
                          separators=(",", ":"))

    def digest(self) -> str:
        """Stable cache key: sha256 over the canonical spec JSON."""
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()

    @property
    def build_key(self) -> Tuple:
        """Specs sharing this key reuse one workload object (and therefore
        one memoised trace build) inside a worker batch."""
        return (self.workload, self.workload_params, self.n_cores,
                self.sw_prefetch_distance)

    def make_workload(self) -> Workload:
        return workload_from_spec(self.workload, _thaw(self.workload_params))


def sweep_id(specs: Iterable[RunSpec]) -> str:
    """A stable identity for a spec set (used to key journal files):
    sha256 over the sorted spec digests, independent of request order."""
    digests = sorted(spec.digest() for spec in specs)
    return hashlib.sha256("\n".join(digests).encode()).hexdigest()


# ----------------------------------------------------------------------
# Spec execution (shared by the serial path and pool workers)
# ----------------------------------------------------------------------
def execute_spec(spec: RunSpec,
                 workload: Optional[Workload] = None) -> SimulationResult:
    """Simulate one spec; reconstructs the workload unless one is passed."""
    if workload is None:
        workload = spec.make_workload()
    config, prefetcher, imp_cfg, software = experiment_config(
        spec.mode, spec.n_cores,
        IMPConfig.from_dict(_thaw(spec.imp_config)),
        SystemConfig.from_dict(_thaw(spec.base_config)))
    return run_workload(workload, config, prefetcher=prefetcher,
                        imp_config=imp_cfg, software_prefetch=software,
                        sw_prefetch_distance=spec.sw_prefetch_distance)


def make_record(spec: RunSpec, result: SimulationResult) -> Dict:
    """The JSON cache/transport record for one completed spec."""
    return {"schema": CACHE_SCHEMA_VERSION,
            "spec": spec.to_dict(),
            "fingerprint": result.stats.fingerprint(),
            "result": result.to_dict()}


class FingerprintMismatch(ValueError):
    """A record's stored fingerprint disagrees with its own statistics."""


def record_result(record: Dict) -> SimulationResult:
    """Reconstruct a result from a record, verifying its fingerprint."""
    result = SimulationResult.from_dict(record["result"])
    if result.stats.fingerprint() != record["fingerprint"]:
        raise FingerprintMismatch(
            "cache record fingerprint does not match its stats")
    return result


def _run_batch(payload: Dict) -> List[Dict]:
    """Worker entry point: simulate one batch of specs.

    All specs in a batch share one ``build_key``, so a single workload
    object (and its memoised trace build) serves the whole batch.  Each
    spec yields an *outcome envelope* — ``{"record": ...}`` on success,
    ``{"kind": ..., "error": ...}`` on a per-run exception — so one bad
    run never poisons its batch-mates.  ``payload["faults"]`` (when set)
    is a :class:`repro.experiments.faults.FaultPlan` applied per spec.
    """
    specs = [RunSpec.from_dict(doc) for doc in payload["specs"]]
    attempts = payload.get("attempts") or [0] * len(specs)
    plan = (FaultPlan.from_dict(payload["faults"])
            if payload.get("faults") else None)
    workload = specs[0].make_workload()
    outcomes: List[Dict] = []
    for spec, attempt in zip(specs, attempts):
        try:
            if plan is not None:
                plan.apply(spec.digest(), attempt, in_worker=True)
            record = make_record(spec, execute_spec(spec, workload=workload))
        except TransientFault as exc:
            outcomes.append({"kind": "transient", "error": str(exc)})
        except Exception as exc:  # noqa: BLE001 — envelope, not swallow
            outcomes.append({"kind": "error",
                             "error": f"{type(exc).__name__}: {exc}"})
        else:
            outcomes.append({"record": record})
    return outcomes


# ----------------------------------------------------------------------
# Persistent on-disk cache
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class QuarantinedRecord:
    """One corrupt cache record set aside for inspection."""

    path: Path
    digest: str
    reason: str


def quarantine_dir(directory) -> Path:
    return Path(directory) / QUARANTINE_DIRNAME


def list_quarantined(directory) -> List[QuarantinedRecord]:
    """Quarantined records under a cache directory, sorted by file name."""
    qdir = quarantine_dir(directory)
    entries: List[QuarantinedRecord] = []
    if not qdir.is_dir():
        return entries
    for path in sorted(qdir.iterdir()):
        stem = path.name
        if stem.endswith(".json"):
            stem = stem[:-len(".json")]
        # ``<digest>.<reason>[.<n>]`` — the trailing counter uniquifies a
        # digest quarantined more than once (see ``_quarantine``).
        parts = stem.split(".")
        entries.append(QuarantinedRecord(
            path=path, digest=parts[0],
            reason=parts[1] if len(parts) > 1 and parts[1] else "unknown"))
    return entries


def purge_quarantined(directory) -> int:
    """Delete every quarantined record; returns how many were removed."""
    removed = 0
    for entry in list_quarantined(directory):
        try:
            entry.path.unlink()
        except IsADirectoryError:
            import shutil
            shutil.rmtree(entry.path, ignore_errors=True)
        except OSError:
            continue
        removed += 1
    try:
        quarantine_dir(directory).rmdir()
    except OSError:
        pass
    return removed


class ResultCache:
    """Versioned JSON result store, one file per spec digest.

    Reads validate the schema version, the stored spec (digest collisions)
    and the statistics fingerprint; anything invalid or unparseable is
    moved into ``quarantine/`` (annotated with the failure class) and
    reported as a miss, so a corrupted cache heals itself on the next
    sweep while keeping the evidence inspectable via
    ``repro cache doctor``.  Writes are atomic — a temp file in the same
    directory published with ``os.replace`` — so a crash or a concurrent
    writer can never leave a truncated record behind.
    """

    def __init__(self, directory, enabled: bool = True) -> None:
        self.directory = Path(directory)
        self.enabled = enabled
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0
        self.quarantined = 0

    def _path(self, spec: RunSpec) -> Path:
        return self.directory / f"{spec.digest()}.json"

    # ------------------------------------------------------------------
    def _quarantine(self, path: Path, reason: str) -> None:
        """Set a corrupt record aside (falling back to deletion) so the
        slot reads as a miss and gets recomputed."""
        self.corrupt += 1
        self.misses += 1
        self.quarantined += 1
        stem = path.name[:-len(".json")] if path.name.endswith(".json") \
            else path.name
        qdir = quarantine_dir(self.directory)
        # A digest can be quarantined more than once (e.g. corrupt now,
        # fingerprint-mismatch after the recompute); a numeric suffix keeps
        # every piece of evidence instead of overwriting the earlier one.
        target = qdir / f"{stem}.{reason}.json"
        count = 1
        while target.exists():
            target = qdir / f"{stem}.{reason}.{count}.json"
            count += 1
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, target)
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass

    def get(self, spec: RunSpec) -> Optional[SimulationResult]:
        if not self.enabled:
            return None
        path = self._path(spec)
        try:
            with open(path) as handle:
                record = json.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return None
        except json.JSONDecodeError:
            self._quarantine(path, "truncated")
            return None
        except OSError:
            self._quarantine(path, "unreadable")
            return None
        if not isinstance(record, dict):
            self._quarantine(path, "malformed")
            return None
        if record.get("schema") != CACHE_SCHEMA_VERSION:
            self._quarantine(path, "schema")
            return None
        stored_spec = record.get("spec")
        # Compare in canonical (result-identity) form: records written
        # before the NoC ``kernel`` config field existed, or under a
        # different kernel backend, are the same experiment — every
        # backend is contractually bit-identical.
        if (not isinstance(stored_spec, dict)
                or _strip_result_neutral(stored_spec)
                != spec.canonical_dict()):
            self._quarantine(path, "spec-mismatch")
            return None
        try:
            result = record_result(record)
        except FingerprintMismatch:
            self._quarantine(path, "fingerprint")
            return None
        except (ValueError, KeyError, TypeError, AttributeError):
            self._quarantine(path, "malformed")
            return None
        self.hits += 1
        return result

    def put(self, spec: RunSpec, record: Dict) -> None:
        if not self.enabled:
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._path(spec)
        # Atomic publish: concurrent sweeps may race on the same entry, and
        # both sides write identical bytes (deterministic simulation), so
        # last-rename-wins is safe.
        fd, tmp_name = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(record, handle, sort_keys=True, separators=(",", ":"))
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stores += 1


# ----------------------------------------------------------------------
# Run policy, failures and the sweep journal
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunPolicy:
    """Failure-handling knobs for one engine.

    ``timeout`` is the per-run wall-clock budget in **seconds** (a worker
    batch of N runs gets N× the budget); ``None`` disables enforcement.
    Timeouts are only enforceable on the pool path — in-process execution
    has nobody left to interrupt it, which the README documents.
    ``retries`` bounds how many *additional* attempts a failing run gets;
    attempt ``k`` sleeps ``backoff * backoff_factor**(k-1)`` seconds
    first.  With ``keep_going`` (the default) the sweep completes every
    run it can and raises :class:`SweepError` at the end; ``keep_going=
    False`` (``--fail-fast``) abandons outstanding work at the first
    permanent failure.  ``max_pool_restarts`` bounds how many times a
    broken/stuck pool is rebuilt before the engine degrades to in-process
    serial execution.
    """

    timeout: Optional[float] = None
    retries: int = 2
    backoff: float = 0.5
    backoff_factor: float = 2.0
    keep_going: bool = True
    max_pool_restarts: int = 3

    def backoff_for(self, attempt: int) -> float:
        """Sleep before retry number ``attempt`` (1-based)."""
        if attempt <= 0 or self.backoff <= 0:
            return 0.0
        return self.backoff * self.backoff_factor ** (attempt - 1)

    def to_dict(self) -> Dict:
        return asdict(self)


@dataclass
class FailureRecord:
    """One run that permanently failed (retry budget exhausted).

    ``kind`` distinguishes how it failed: ``timeout`` (wall-clock budget
    exceeded), ``worker_death`` (the worker process died —
    ``BrokenProcessPool``), ``transient`` (a retryable
    :class:`TransientFault` that never stopped firing) or ``error`` (any
    other exception raised by the run).
    """

    digest: str
    workload: str
    mode: str
    n_cores: int
    kind: str
    attempts: int
    error: str

    @classmethod
    def for_spec(cls, spec: RunSpec, kind: str, attempts: int,
                 error: str) -> "FailureRecord":
        return cls(digest=spec.digest(), workload=spec.workload,
                   mode=spec.mode, n_cores=spec.n_cores, kind=kind,
                   attempts=attempts, error=error)

    def to_dict(self) -> Dict:
        return asdict(self)


class SweepError(RuntimeError):
    """Raised at the end of a sweep in which runs permanently failed.

    Carries the structured :class:`FailureRecord` list and every result
    that *did* complete, so callers can report partial progress and write
    ``results/failures.json`` before exiting non-zero.
    """

    def __init__(self, failures: List[FailureRecord],
                 results: Dict[RunSpec, SimulationResult]) -> None:
        kinds: Dict[str, int] = {}
        for failure in failures:
            kinds[failure.kind] = kinds.get(failure.kind, 0) + 1
        summary = ", ".join(f"{count} {kind}"
                            for kind, count in sorted(kinds.items()))
        super().__init__(
            f"{len(failures)} run(s) permanently failed ({summary}); "
            f"{len(results)} completed")
        self.failures = failures
        self.results = results


def write_failure_report(path, failures: Sequence[FailureRecord], *,
                         total: int, completed: int,
                         policy: Optional[RunPolicy] = None,
                         sweep_label: Optional[str] = None) -> Dict:
    """Write the structured end-of-sweep failure report and return it."""
    document = {
        "schema": FAILURE_REPORT_SCHEMA,
        "sweep": sweep_label,
        "total_runs": total,
        "completed_runs": completed,
        "failed_runs": len(failures),
        "policy": (policy or RunPolicy()).to_dict(),
        "failures": [failure.to_dict() for failure in failures],
    }
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=target.parent, suffix=".tmp")
    with os.fdopen(fd, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp_name, target)
    return document


class SweepJournal:
    """Durable append-only record of per-spec outcomes (JSONL).

    One line per outcome, flushed and fsynced as it lands, so a sweep
    killed at any instant leaves a readable journal: ``--resume`` loads
    it to report previously completed work, and a torn final line (the
    crash window) is tolerated and ignored on load.  The journal records
    *progress*; the result cache remains the source of truth for result
    bytes (a journalled-ok spec whose cache record went missing is simply
    recomputed).

    ``sweep_id`` (see :func:`sweep_id`) identifies the spec set being
    swept.  When given, it is stored in the header; resuming with a
    *different* id — the journal on disk belongs to another spec set,
    e.g. a scenario directory whose contents changed — sets
    ``self.mismatched``, discards the stale entries and starts a fresh
    journal instead of silently mixing two sweeps' progress.
    """

    def __init__(self, path, resume: bool = False,
                 label: Optional[str] = None,
                 sweep_id: Optional[str] = None) -> None:
        self.path = Path(path)
        self.label = label
        self.sweep_id = sweep_id
        self.header_sweep_id: Optional[str] = None
        self.mismatched = False
        self.completed: Dict[str, Dict] = {}
        self.failed: Dict[str, Dict] = {}
        self.torn_lines = 0
        existing = resume and self.path.exists()
        if existing:
            self._load()
            if (sweep_id is not None and self.header_sweep_id is not None
                    and self.header_sweep_id != sweep_id):
                self.mismatched = True
                self.completed.clear()
                self.failed.clear()
                self.torn_lines = 0
                self.label = label
                existing = False
        self.resumed = len(self.completed)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "a" if existing else "w")
        if not existing:
            header = {"journal": JOURNAL_SCHEMA, "sweep": self.label}
            if sweep_id is not None:
                header["sweep_id"] = sweep_id
            self._append(header)

    # ------------------------------------------------------------------
    def _load(self) -> None:
        with open(self.path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    # The torn final line of a killed sweep; later lines
                    # (there should be none) are unrecoverable anyway.
                    self.torn_lines += 1
                    continue
                if not isinstance(entry, dict):
                    continue
                if "journal" in entry:
                    self.label = entry.get("sweep", self.label)
                    self.header_sweep_id = entry.get("sweep_id",
                                                     self.header_sweep_id)
                    continue
                digest = entry.get("digest")
                if not digest:
                    continue
                if entry.get("status") == "ok":
                    self.completed[digest] = entry
                    self.failed.pop(digest, None)
                elif entry.get("status") == "failed":
                    self.failed[digest] = entry

    def _append(self, entry: Dict) -> None:
        self._handle.write(json.dumps(entry, sort_keys=True,
                                      separators=(",", ":")) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    # ------------------------------------------------------------------
    def record_ok(self, spec: RunSpec, attempts: int = 1,
                  cached: bool = False) -> None:
        digest = spec.digest()
        if digest in self.completed:
            return
        entry = {"digest": digest, "status": "ok",
                 "workload": spec.workload, "mode": spec.mode,
                 "n_cores": spec.n_cores, "attempts": attempts,
                 "cached": cached}
        self.completed[digest] = entry
        self.failed.pop(digest, None)
        self._append(entry)

    def record_failed(self, failure: FailureRecord) -> None:
        entry = dict(failure.to_dict(), status="failed")
        self.failed[failure.digest] = entry
        self._append(entry)

    def close(self) -> None:
        try:
            self._handle.close()
        except OSError:
            pass


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class SweepEngine:
    """Executes deduplicated :class:`RunSpec` sets, in parallel when asked.

    ``jobs`` defaults to ``$REPRO_JOBS`` (else 1).  ``cache`` is an
    optional :class:`ResultCache`; completed specs are looked up before
    simulating and stored after.  ``policy`` (a :class:`RunPolicy`)
    governs timeouts, retries, backoff and the exit strategy; ``journal``
    (a :class:`SweepJournal`) makes progress durable; ``faults`` is the
    deterministic chaos plan (default: ``$REPRO_FAULTS``, normally off).

    ``backend`` selects how cache-miss specs execute — a name from
    :data:`repro.registry.SWEEP_BACKENDS` (``serial``, ``process``, or
    ``service``) or a ready :class:`~repro.experiments.backends.
    SweepBackend` instance.  The default, ``process``, preserves the
    historical engine behaviour exactly (serial below the parallel
    threshold, else the worker pool).  ``shards`` is the ``service``
    backend's list of ``repro serve`` base URLs; cache lookups,
    journaling, retry policy and failure reporting all sit *above* the
    backend, so they behave identically whichever one runs the specs.
    """

    def __init__(self, jobs: Optional[int] = None,
                 cache: Optional[ResultCache] = None,
                 policy: Optional[RunPolicy] = None,
                 journal: Optional[SweepJournal] = None,
                 faults: Optional[FaultPlan] = None,
                 backend=None, shards: Sequence[str] = ()) -> None:
        from repro.experiments.backends import resolve_backend

        self.jobs = resolve_jobs(jobs)
        self.cache = cache
        self.policy = policy or RunPolicy()
        self.journal = journal
        self.faults = faults if faults is not None else FaultPlan.from_env()
        self.backend = resolve_backend(backend, shards)
        self.simulations_run = 0
        self.failures: List[FailureRecord] = []
        self.pool_restarts = 0
        self.degraded = False
        self._pool: Optional[ProcessPoolExecutor] = None
        self._abandoned = False
        self._completed_count = 0
        self._corrupted: set = set()

    # ------------------------------------------------------------------
    def run(self, specs: Sequence[RunSpec],
            workload_lookup: Optional[Callable[[RunSpec],
                                               Optional[Workload]]] = None,
            ) -> Dict[RunSpec, SimulationResult]:
        """Run every spec (each exactly once) and return spec -> result.

        ``workload_lookup`` lets the serial path reuse live workload
        objects (and their memoised builds); the parallel path always
        reconstructs workloads inside the workers.

        Raises :class:`SweepError` when any spec permanently fails after
        retries (with ``keep_going`` every other spec still completes
        first) and ``KeyboardInterrupt``/``SystemExit`` untouched after
        cleaning up the pool and flushing the journal.
        """
        ordered: List[RunSpec] = list(dict.fromkeys(specs))
        results: Dict[RunSpec, SimulationResult] = {}
        misses: List[RunSpec] = []
        for spec in ordered:
            cached = self.cache.get(spec) if self.cache else None
            if cached is not None:
                results[spec] = cached
                if self.journal is not None:
                    self.journal.record_ok(spec, attempts=0, cached=True)
            else:
                misses.append(spec)
        if not misses:
            return results
        failures: List[FailureRecord] = []
        self.backend.execute(self, misses, results, workload_lookup,
                             failures)
        if failures:
            self.failures.extend(failures)
            raise SweepError(failures, results)
        return results

    # ------------------------------------------------------------------
    # Shared completion / failure bookkeeping
    # ------------------------------------------------------------------
    def _complete(self, spec: RunSpec,
                  results: Dict[RunSpec, SimulationResult],
                  result: Optional[SimulationResult] = None,
                  record: Optional[Dict] = None,
                  attempts: int = 1) -> None:
        if result is None:
            result = record_result(record)
        self.simulations_run += 1
        if self.cache is not None:
            if record is None:
                record = make_record(spec, result)
            self.cache.put(spec, record)
            self._maybe_corrupt(spec)
        results[spec] = result
        if self.journal is not None:
            self.journal.record_ok(spec, attempts=attempts)
        self._completed_count += 1
        plan = self.faults
        if (plan is not None and plan.interrupt_after is not None
                and self._completed_count >= plan.interrupt_after):
            raise KeyboardInterrupt(
                f"injected interrupt after {self._completed_count} runs")

    def _maybe_corrupt(self, spec: RunSpec) -> None:
        """Chaos hook: tear the record we just published (first publish of
        a digest per engine), modelling a crashed non-atomic writer."""
        plan = self.faults
        if plan is None or plan.corrupt <= 0:
            return
        digest = spec.digest()
        if digest in self._corrupted or not plan.should_corrupt(digest):
            return
        self._corrupted.add(digest)
        from repro.experiments.faults import corrupt_record
        try:
            corrupt_record(self.cache._path(spec))
        except OSError:
            pass

    def _fail_spec(self, spec: RunSpec, kind: str, error: str,
                   attempts: int, failures: List[FailureRecord]) -> None:
        failure = FailureRecord.for_spec(spec, kind, attempts, error)
        failures.append(failure)
        if self.journal is not None:
            self.journal.record_failed(failure)
        if not self.policy.keep_going:
            self._abandoned = True

    # ------------------------------------------------------------------
    # Serial execution (jobs == 1, single miss, or degraded pool)
    # ------------------------------------------------------------------
    def _run_serial(self, specs: Sequence[RunSpec],
                    results: Dict[RunSpec, SimulationResult],
                    workload_lookup, failures: List[FailureRecord],
                    attempts: Optional[Dict[RunSpec, int]] = None) -> None:
        attempts = attempts if attempts is not None else {}
        plan = self.faults
        for spec in specs:
            if self._abandoned:
                return
            digest = spec.digest()
            while True:
                attempt = attempts.get(spec, 0)
                try:
                    if plan is not None:
                        plan.apply(digest, attempt, in_worker=False)
                    workload = (workload_lookup(spec) if workload_lookup
                                else None)
                    result = execute_spec(spec, workload=workload)
                except (KeyboardInterrupt, SystemExit):
                    raise
                except Exception as exc:  # noqa: BLE001 — retried, bounded
                    kind = ("transient" if isinstance(exc, TransientFault)
                            else "error")
                    attempts[spec] = attempt + 1
                    if attempts[spec] > self.policy.retries:
                        self._fail_spec(spec, kind,
                                        f"{type(exc).__name__}: {exc}",
                                        attempts[spec], failures)
                        break
                    time.sleep(self.policy.backoff_for(attempts[spec]))
                else:
                    self._complete(spec, results, result=result,
                                   attempts=attempt + 1)
                    break

    # ------------------------------------------------------------------
    # Pool execution with timeouts, retries and graceful degradation
    # ------------------------------------------------------------------
    def _ensure_pool(self, outstanding: int) -> ProcessPoolExecutor:
        if self._pool is None:
            workers = max(1, min(self.jobs, outstanding))
            self._pool = ProcessPoolExecutor(max_workers=workers)
        return self._pool

    def _retire_pool(self, terminate: bool) -> None:
        pool, self._pool = self._pool, None
        if pool is None:
            return
        if not terminate:
            pool.shutdown()
            return
        # A stuck or killed worker cannot be joined: cancel what never
        # started, then forcibly terminate the worker processes so their
        # wall-clock (and the stall, if injected) is reclaimed.
        processes = list(getattr(pool, "_processes", {}).values())
        pool.shutdown(wait=False, cancel_futures=True)
        for process in processes:
            try:
                process.terminate()
            except (OSError, ValueError, AttributeError):
                pass

    def _pool_broken(self, waiting, inflight, reason: str) -> None:
        """Requeue in-flight work uncharged and rebuild (or give up on)
        the pool."""
        now = time.monotonic()
        for future in list(inflight):
            batch, _ = inflight.pop(future)
            waiting.append((now, batch))
        self._retire_pool(terminate=True)
        self.pool_restarts += 1
        if self.pool_restarts > self.policy.max_pool_restarts:
            if not self.degraded:
                print(f"[sweep] warning: worker pool unusable after "
                      f"{self.pool_restarts} restarts ({reason}); "
                      f"degrading to in-process serial execution",
                      file=sys.stderr)
            self.degraded = True

    def _charge(self, specs: Sequence[RunSpec], kind: str, error: str,
                attempts: Dict[RunSpec, int], waiting,
                failures: List[FailureRecord]) -> None:
        """Count one failed attempt against each spec; requeue survivors
        (grouped to keep sharing trace builds) with exponential backoff."""
        retryable: List[RunSpec] = []
        worst = 0
        for spec in specs:
            attempts[spec] = attempts.get(spec, 0) + 1
            if attempts[spec] > self.policy.retries:
                self._fail_spec(spec, kind, error, attempts[spec], failures)
            else:
                retryable.append(spec)
                worst = max(worst, attempts[spec])
        if not retryable:
            return
        ready_at = time.monotonic() + self.policy.backoff_for(worst)
        regrouped: Dict[Tuple, List[RunSpec]] = {}
        for spec in retryable:
            regrouped.setdefault(spec.build_key, []).append(spec)
        for batch in regrouped.values():
            waiting.append((ready_at, batch))

    def _run_pool(self, misses: Sequence[RunSpec],
                  results: Dict[RunSpec, SimulationResult],
                  failures: List[FailureRecord]) -> None:
        policy = self.policy
        attempts: Dict[RunSpec, int] = {}
        grouped: Dict[Tuple, List[RunSpec]] = {}
        for spec in misses:
            grouped.setdefault(spec.build_key, []).append(spec)
        # (ready_at, batch) pairs; ready_at > now while backing off.
        waiting: List[Tuple[float, List[RunSpec]]] = [
            (0.0, batch) for batch in grouped.values()]
        inflight: Dict = {}
        plan_dict = self.faults.to_dict() if self.faults is not None else None
        try:
            while (waiting or inflight) and not self._abandoned \
                    and not self.degraded:
                now = time.monotonic()
                # Submit every ready batch (bounded, to keep retry batches
                # interleaving with first-time work).
                ready = [item for item in waiting if item[0] <= now]
                for item in ready:
                    if len(inflight) >= 2 * self.jobs:
                        break
                    waiting.remove(item)
                    batch = item[1]
                    payload = {
                        "specs": [spec.to_dict() for spec in batch],
                        "attempts": [attempts.get(spec, 0)
                                     for spec in batch],
                        "faults": plan_dict,
                    }
                    try:
                        pool = self._ensure_pool(len(waiting)
                                                 + len(inflight) + 1)
                        future = pool.submit(_run_batch, payload)
                    except (BrokenProcessPool, RuntimeError, OSError) as exc:
                        waiting.append((now, batch))
                        self._pool_broken(waiting, inflight,
                                          f"submit failed: {exc}")
                        break
                    deadline = (now + policy.timeout * len(batch)
                                if policy.timeout else None)
                    inflight[future] = (batch, deadline)
                if not inflight:
                    if waiting and not self.degraded:
                        # Everything is backing off; sleep to the nearest
                        # ready time.
                        ready_at = min(item[0] for item in waiting)
                        time.sleep(max(0.0, ready_at - time.monotonic()))
                    continue
                # Wait for a completion, the nearest deadline, or the
                # nearest backoff expiry — whichever comes first.
                now = time.monotonic()
                horizons = [deadline for _, deadline in inflight.values()
                            if deadline is not None]
                horizons.extend(item[0] for item in waiting
                                if item[0] > now)
                wait_for = None
                if horizons:
                    wait_for = max(0.0, min(horizons) - time.monotonic())
                done, _ = futures_wait(set(inflight), timeout=wait_for,
                                       return_when=FIRST_COMPLETED)
                broken = False
                for future in done:
                    batch, _ = inflight.pop(future)
                    try:
                        outcomes = future.result()
                    except BrokenProcessPool:
                        broken = True
                        self._charge(batch, "worker_death",
                                     "worker process died "
                                     "(BrokenProcessPool)",
                                     attempts, waiting, failures)
                    except Exception as exc:  # noqa: BLE001
                        self._charge(batch, "error",
                                     f"{type(exc).__name__}: {exc}",
                                     attempts, waiting, failures)
                    else:
                        for spec, outcome in zip(batch, outcomes):
                            record = outcome.get("record")
                            if record is not None:
                                self._complete(
                                    spec, results, record=record,
                                    attempts=attempts.get(spec, 0) + 1)
                            else:
                                self._charge(
                                    [spec], outcome.get("kind", "error"),
                                    outcome.get("error", "unknown error"),
                                    attempts, waiting, failures)
                if broken:
                    self._pool_broken(waiting, inflight,
                                      "worker process died")
                    continue
                # Enforce per-run wall-clock deadlines: a stuck worker is
                # unrecoverable in-place, so expired batches are charged a
                # timeout and the pool is rebuilt without them.
                now = time.monotonic()
                expired = [future for future, (_, deadline)
                           in inflight.items()
                           if deadline is not None and deadline <= now]
                if expired:
                    for future in expired:
                        batch, _ = inflight.pop(future)
                        self._charge(batch, "timeout",
                                     f"run exceeded the {policy.timeout}s "
                                     f"wall-clock timeout",
                                     attempts, waiting, failures)
                    self._pool_broken(waiting, inflight, "stuck worker")
        except (KeyboardInterrupt, SystemExit):
            self._retire_pool(terminate=True)
            raise
        if self._abandoned:
            self._retire_pool(terminate=True)
            return
        if self.degraded:
            self._retire_pool(terminate=True)
            leftovers = [spec for _, batch in waiting for spec in batch]
            self._run_serial(leftovers, results, None, failures,
                             attempts=attempts)
            return
        self._retire_pool(terminate=False)


def run_specs(specs: Iterable[RunSpec], *, jobs: Optional[int] = None,
              cache_dir=None, use_cache: bool = True,
              policy: Optional[RunPolicy] = None,
              ) -> Dict[RunSpec, SimulationResult]:
    """One-shot convenience wrapper around :class:`SweepEngine`."""
    cache = (ResultCache(cache_dir) if (cache_dir is not None and use_cache)
             else None)
    return SweepEngine(jobs=jobs, cache=cache, policy=policy).run(list(specs))
