"""Parallel sweep engine with a persistent on-disk result cache.

The paper's evaluation is a large cross-product — ~10 workloads x 6+ modes
x {16, 64, 128, 256} cores — and each point is an independent, perfectly
deterministic simulation.  This module turns every simulation request into
a picklable, hashable :class:`RunSpec`, executes deduplicated specs across
a ``ProcessPoolExecutor`` worker pool, and memoises completed results in a
versioned on-disk cache so re-running any figure, table, or
``reproduce_paper.py`` only simulates what changed.

Design rules:

* **Specs, not objects, cross process boundaries.**  A ``RunSpec`` carries
  the workload's registry name + constructor parameters (seed included),
  the experiment mode, the core count, and the full IMP / system
  configuration.  Workers rebuild workloads and configs from the spec;
  live simulators, traces or memory images are never pickled.
* **Deterministic everywhere.**  All workload randomness derives from the
  seed inside the spec, so a spec simulates to bit-identical statistics
  regardless of process, worker count, or execution order.  The engine's
  regression tests assert serial and ``--jobs N`` sweeps produce identical
  stat fingerprints.
* **Per-worker trace-build memoisation.**  Specs are grouped into batches
  that share one (workload, parameters, core count); each batch runs on
  one worker with a single workload object, so the trace build is paid
  once per batch exactly like the serial runner pays it once per sweep.
* **Versioned cache records.**  Cache entries live under ``results/cache/``
  (by convention) as one JSON record per spec digest, carrying the schema
  version, the full spec, a statistics fingerprint, and the serialised
  result.  Any config field change changes the digest; a schema bump,
  spec-digest collision, fingerprint mismatch, or corrupted file is
  treated as a miss and the entry is rewritten.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.config import IMPConfig
from repro.experiments.configs import experiment_config, scaled_config
from repro.sim.config import SystemConfig
from repro.sim.system import SimulationResult, run_workload
from repro.workloads import workload_from_spec
from repro.workloads.base import Workload, WorkloadSpecError

#: Bump when the record layout or the simulation semantics change in a way
#: that invalidates previously cached results.
#: v2: registry-driven configuration — ``SystemConfig`` gained the
#: ``hierarchy`` field (explicit level chains) and ``CoreStats`` gained
#: shared-L3 counters, so v1 records no longer describe the full spec.
#: v3: per-level prefetcher attachment — ``HierarchyConfig`` serialises an
#: ``attach`` list instead of ``prefetch_level`` (so v2 hierarchy-bearing
#: specs no longer parse into the same canonical form) and ``CoreStats``
#: records may carry dynamic ``lN_*`` counters for >3-level chains.
#: Stale v2 records self-heal: the version check treats them as misses
#: and deletes them on first lookup.
CACHE_SCHEMA_VERSION = 3

#: Environment variable consulted when no explicit worker count is given.
JOBS_ENV_VAR = "REPRO_JOBS"


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count: explicit argument, else ``$REPRO_JOBS``, else serial."""
    if jobs is not None:
        return max(1, int(jobs))
    env = os.environ.get(JOBS_ENV_VAR)
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            import sys
            print(f"[sweep] warning: ignoring non-integer "
                  f"{JOBS_ENV_VAR}={env!r}; running serially",
                  file=sys.stderr)
    return 1


# ----------------------------------------------------------------------
# Canonical freezing of nested config dictionaries
# ----------------------------------------------------------------------
def _freeze(value):
    """Recursively convert dicts/lists into sorted, hashable tuples."""
    if isinstance(value, dict):
        return tuple(sorted((key, _freeze(val)) for key, val in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(item) for item in value)
    return value


def _thaw(value):
    """Inverse of :func:`_freeze` for dict-shaped tuples."""
    if isinstance(value, tuple):
        if all(isinstance(item, tuple) and len(item) == 2
               and isinstance(item[0], str) for item in value):
            return {key: _thaw(val) for key, val in value}
        return [_thaw(item) for item in value]
    return value


# ----------------------------------------------------------------------
# RunSpec
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunSpec:
    """One fully described simulation point, hashable and picklable.

    ``workload_params``, ``imp_config`` and ``base_config`` are stored as
    canonically frozen (sorted, nested) tuples so that two specs built from
    equal configurations compare and hash equal, whatever dict ordering
    they were built from.
    """

    workload: str
    workload_params: Tuple
    mode: str
    n_cores: int
    imp_config: Tuple
    base_config: Tuple
    sw_prefetch_distance: int = 8

    # ------------------------------------------------------------------
    @classmethod
    def for_run(cls, workload: Workload, mode: str, n_cores: int,
                imp_config: Optional[IMPConfig] = None,
                base_config: Optional[SystemConfig] = None,
                sw_prefetch_distance: int = 8) -> "RunSpec":
        """Build the spec for one ``ExperimentRunner.run``-style request.

        ``imp_config=None`` and ``base_config=None`` are normalised to the
        defaults :func:`repro.experiments.configs.experiment_config` would
        resolve them to, so equivalent requests share one cache entry.

        Raises :class:`repro.workloads.base.WorkloadSpecError` when the
        workload cannot be reconstructed from plain parameters (the caller
        should then fall back to in-process execution).
        """
        from repro.registry import WORKLOADS

        name = getattr(workload, "name", None)
        if name not in WORKLOADS or type(workload) is not WORKLOADS.get(name).factory:
            raise WorkloadSpecError(
                f"workload {name!r} ({type(workload).__name__}) is not the "
                f"registered implementation; cannot spec-serialise it")
        resolved_base = (base_config or scaled_config(n_cores))
        if resolved_base.n_cores != n_cores:
            resolved_base = resolved_base.with_cores(n_cores)
        return cls(workload=name,
                   workload_params=_freeze(workload.spec_params()),
                   mode=mode, n_cores=n_cores,
                   imp_config=_freeze((imp_config or IMPConfig()).to_dict()),
                   base_config=_freeze(resolved_base.to_dict()),
                   sw_prefetch_distance=sw_prefetch_distance)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        return {
            "workload": self.workload,
            "workload_params": _thaw(self.workload_params),
            "mode": self.mode,
            "n_cores": self.n_cores,
            "imp_config": _thaw(self.imp_config),
            "base_config": _thaw(self.base_config),
            "sw_prefetch_distance": self.sw_prefetch_distance,
        }

    @classmethod
    def from_dict(cls, doc: Dict) -> "RunSpec":
        return cls(workload=doc["workload"],
                   workload_params=_freeze(doc["workload_params"]),
                   mode=doc["mode"], n_cores=doc["n_cores"],
                   imp_config=_freeze(doc["imp_config"]),
                   base_config=_freeze(doc["base_config"]),
                   sw_prefetch_distance=doc["sw_prefetch_distance"])

    def canonical_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def digest(self) -> str:
        """Stable cache key: sha256 over the canonical spec JSON."""
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()

    @property
    def build_key(self) -> Tuple:
        """Specs sharing this key reuse one workload object (and therefore
        one memoised trace build) inside a worker batch."""
        return (self.workload, self.workload_params, self.n_cores,
                self.sw_prefetch_distance)

    def make_workload(self) -> Workload:
        return workload_from_spec(self.workload, _thaw(self.workload_params))


# ----------------------------------------------------------------------
# Spec execution (shared by the serial path and pool workers)
# ----------------------------------------------------------------------
def execute_spec(spec: RunSpec,
                 workload: Optional[Workload] = None) -> SimulationResult:
    """Simulate one spec; reconstructs the workload unless one is passed."""
    if workload is None:
        workload = spec.make_workload()
    config, prefetcher, imp_cfg, software = experiment_config(
        spec.mode, spec.n_cores,
        IMPConfig.from_dict(_thaw(spec.imp_config)),
        SystemConfig.from_dict(_thaw(spec.base_config)))
    return run_workload(workload, config, prefetcher=prefetcher,
                        imp_config=imp_cfg, software_prefetch=software,
                        sw_prefetch_distance=spec.sw_prefetch_distance)


def make_record(spec: RunSpec, result: SimulationResult) -> Dict:
    """The JSON cache/transport record for one completed spec."""
    return {"schema": CACHE_SCHEMA_VERSION,
            "spec": spec.to_dict(),
            "fingerprint": result.stats.fingerprint(),
            "result": result.to_dict()}


def record_result(record: Dict) -> SimulationResult:
    """Reconstruct a result from a record, verifying its fingerprint."""
    result = SimulationResult.from_dict(record["result"])
    if result.stats.fingerprint() != record["fingerprint"]:
        raise ValueError("cache record fingerprint does not match its stats")
    return result


def _run_batch(spec_dicts: List[Dict]) -> List[Dict]:
    """Worker entry point: simulate one batch of specs.

    All specs in a batch share one ``build_key``, so a single workload
    object (and its memoised trace build) serves the whole batch.
    """
    specs = [RunSpec.from_dict(doc) for doc in spec_dicts]
    workload = specs[0].make_workload()
    return [make_record(spec, execute_spec(spec, workload=workload))
            for spec in specs]


# ----------------------------------------------------------------------
# Persistent on-disk cache
# ----------------------------------------------------------------------
class ResultCache:
    """Versioned JSON result store, one file per spec digest.

    Reads validate the schema version, the stored spec (digest collisions)
    and the statistics fingerprint; anything invalid or unparseable is
    deleted and reported as a miss, so a corrupted cache heals itself on
    the next sweep.
    """

    def __init__(self, directory, enabled: bool = True) -> None:
        self.directory = Path(directory)
        self.enabled = enabled
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0

    def _path(self, spec: RunSpec) -> Path:
        return self.directory / f"{spec.digest()}.json"

    # ------------------------------------------------------------------
    def get(self, spec: RunSpec) -> Optional[SimulationResult]:
        if not self.enabled:
            return None
        path = self._path(spec)
        try:
            with open(path) as handle:
                record = json.load(handle)
            if record.get("schema") != CACHE_SCHEMA_VERSION:
                raise ValueError("cache schema version mismatch")
            if record.get("spec") != spec.to_dict():
                raise ValueError("cache entry does not match spec")
            result = record_result(record)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (ValueError, KeyError, TypeError, AttributeError, OSError):
            # Corrupted, stale-schema, or colliding entry: drop and re-run.
            self.corrupt += 1
            self.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.hits += 1
        return result

    def put(self, spec: RunSpec, record: Dict) -> None:
        if not self.enabled:
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._path(spec)
        # Atomic publish: concurrent sweeps may race on the same entry, and
        # both sides write identical bytes (deterministic simulation), so
        # last-rename-wins is safe.
        fd, tmp_name = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(record, handle, sort_keys=True, separators=(",", ":"))
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stores += 1


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class SweepEngine:
    """Executes deduplicated :class:`RunSpec` sets, in parallel when asked.

    ``jobs`` defaults to ``$REPRO_JOBS`` (else 1).  ``cache`` is an
    optional :class:`ResultCache`; completed specs are looked up before
    simulating and stored after.
    """

    def __init__(self, jobs: Optional[int] = None,
                 cache: Optional[ResultCache] = None) -> None:
        self.jobs = resolve_jobs(jobs)
        self.cache = cache
        self.simulations_run = 0

    # ------------------------------------------------------------------
    def run(self, specs: Sequence[RunSpec],
            workload_lookup: Optional[Callable[[RunSpec],
                                               Optional[Workload]]] = None,
            ) -> Dict[RunSpec, SimulationResult]:
        """Run every spec (each exactly once) and return spec -> result.

        ``workload_lookup`` lets the serial path reuse live workload
        objects (and their memoised builds); the parallel path always
        reconstructs workloads inside the workers.
        """
        ordered: List[RunSpec] = list(dict.fromkeys(specs))
        results: Dict[RunSpec, SimulationResult] = {}
        misses: List[RunSpec] = []
        for spec in ordered:
            cached = self.cache.get(spec) if self.cache else None
            if cached is not None:
                results[spec] = cached
            else:
                misses.append(spec)
        if not misses:
            return results
        if self.jobs <= 1 or len(misses) == 1:
            for spec in misses:
                workload = workload_lookup(spec) if workload_lookup else None
                result = execute_spec(spec, workload=workload)
                self.simulations_run += 1
                if self.cache:
                    self.cache.put(spec, make_record(spec, result))
                results[spec] = result
            return results
        # Group cache misses into batches that share one trace build, then
        # fan the batches out across the pool.  Batch order (and therefore
        # result assembly) is deterministic: first-seen spec order.
        batches: Dict[Tuple, List[RunSpec]] = {}
        for spec in misses:
            batches.setdefault(spec.build_key, []).append(spec)
        batch_list = list(batches.values())
        workers = min(self.jobs, len(batch_list))
        payloads = [[spec.to_dict() for spec in batch] for batch in batch_list]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            for batch, records in zip(batch_list,
                                      pool.map(_run_batch, payloads)):
                for spec, record in zip(batch, records):
                    self.simulations_run += 1
                    if self.cache:
                        self.cache.put(spec, record)
                    results[spec] = record_result(record)
        return results


def run_specs(specs: Iterable[RunSpec], *, jobs: Optional[int] = None,
              cache_dir=None, use_cache: bool = True,
              ) -> Dict[RunSpec, SimulationResult]:
    """One-shot convenience wrapper around :class:`SweepEngine`."""
    cache = (ResultCache(cache_dir) if (cache_dir is not None and use_cache)
             else None)
    return SweepEngine(jobs=jobs, cache=cache).run(list(specs))
