"""Sweep execution backends: how cache-miss specs actually run.

The :class:`~repro.experiments.sweep.SweepEngine` owns everything about
a sweep that must not vary with *where* the simulations execute — cache
lookups and publishes, journaling, the RunPolicy retry/timeout budget,
and :class:`~repro.experiments.sweep.FailureRecord` reporting.  What
remains — "given these cache-miss specs, produce a verified cache record
for each" — is a :class:`SweepBackend`, catalogued (like the NoC
reservation kernels) in :data:`repro.registry.SWEEP_BACKENDS`:

``serial``
    In-process, one spec at a time.  The reference executor the
    equivalence suite holds every other backend to.
``process``
    The historical engine behaviour, verbatim: in-process below the
    parallel threshold (``jobs <= 1``, a single miss, or a degraded
    pool), else the ``ProcessPoolExecutor`` batch path.  The default.
``service``
    Shards specs across one or more ``repro serve`` endpoints
    (``--backend service --shard URL [--shard URL ...]``): submits each
    spec as a runspec document via ``POST /v1/jobs``, polls with backoff
    honoring ``Retry-After``, and ingests the returned cache-v3 records
    through the engine's normal completion path — so warm-cache
    semantics, ``--resume`` journals and failure reports are identical
    to a local sweep.  A shard that dies mid-sweep has its in-flight
    specs requeued (uncharged) to the survivors; when every shard is
    gone, the leftovers fall back to the ``process`` backend so the
    sweep still completes.

Backends are result-neutral by contract: every spec simulates to
bit-identical statistics whichever backend runs it, and the backend
choice never enters a RunSpec digest (``--backend`` is an execution
knob, not an experiment parameter).
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.sweep import (CACHE_SCHEMA_VERSION, FailureRecord,
                                     RunSpec, _strip_result_neutral)
from repro.registry import SWEEP_BACKENDS
from repro.service.client import (ServiceClient, ShardProtocolError,
                                  ShardUnavailable, retry_after)

#: Name resolved when an engine is built without an explicit backend.
DEFAULT_BACKEND = "process"

#: Maximum jobs the service backend keeps in flight per shard.  Small on
#: purpose: the shard's own bounded queue (429 + ``Retry-After``) is the
#: real backpressure; this just caps how much work a dying shard strands.
SUBMIT_WINDOW = 8

#: Poll pacing bounds, seconds.  The interval starts at the minimum,
#: grows geometrically while nothing completes, and resets on progress.
POLL_MIN = 0.05
POLL_MAX = 1.0


def resolve_backend(backend=None, shards: Sequence[str] = ()):
    """Resolve a backend name (or pass through an instance) + shards.

    ``None`` means :data:`DEFAULT_BACKEND`.  Raises
    :class:`repro.registry.RegistryError` for unknown names and
    :class:`ValueError` when the shard list does not fit the backend
    (``service`` requires at least one, the others take none).
    """
    if backend is None:
        backend = DEFAULT_BACKEND
    if isinstance(backend, str):
        backend = SWEEP_BACKENDS.get(backend).factory()
    return backend.configure(list(shards))


class SweepBackend:
    """Interface every sweep backend implements."""

    name = "abstract"

    def configure(self, shards: List[str]) -> "SweepBackend":
        """Bind deployment parameters; returns ``self`` for chaining."""
        if shards:
            raise ValueError(
                f"the {self.name!r} sweep backend runs locally and takes "
                f"no --shard URLs (use --backend service)")
        return self

    def execute(self, engine, misses: Sequence[RunSpec], results: Dict,
                workload_lookup, failures: List[FailureRecord]) -> None:
        """Run every miss, reporting through ``engine._complete`` /
        ``engine._fail_spec`` so bookkeeping stays backend-agnostic."""
        raise NotImplementedError


@SWEEP_BACKENDS.register("serial", description="in-process, one spec at "
                         "a time — the reference executor every backend "
                         "must match bit-identically")
class SerialBackend(SweepBackend):
    name = "serial"

    def execute(self, engine, misses, results, workload_lookup,
                failures) -> None:
        engine._run_serial(misses, results, workload_lookup, failures)


@SWEEP_BACKENDS.register("process", description="ProcessPoolExecutor "
                         "worker pool on this host (the default)")
class ProcessBackend(SweepBackend):
    name = "process"

    def execute(self, engine, misses, results, workload_lookup,
                failures) -> None:
        # The engine's historical dispatch, verbatim: the pool only pays
        # off with >1 worker and >1 miss, and a degraded pool stays
        # retired for the rest of the engine's life.
        if engine.jobs <= 1 or len(misses) == 1 or engine.degraded:
            engine._run_serial(misses, results, workload_lookup, failures)
        else:
            engine._run_pool(misses, results, failures)


# ----------------------------------------------------------------------
# The service (sharded) backend
# ----------------------------------------------------------------------
@dataclass
class _Flight:
    """One spec accepted by a shard and not yet resolved."""

    spec: RunSpec
    #: Wall-clock deadline, armed when the job is first seen ``running``
    #: (queue time on a busy shard does not count against the budget).
    deadline: Optional[float] = None


class _Shard:
    """Client-side view of one ``repro serve`` endpoint."""

    def __init__(self, url: str) -> None:
        self.url = url
        self.client = ServiceClient(url)
        self.inflight: Dict[str, _Flight] = {}
        self.not_before = 0.0   # submit backpressure (429 Retry-After)
        self.alive = True
        self.draining = False

    def accepting(self, now: float) -> bool:
        return (self.alive and not self.draining
                and self.not_before <= now
                and len(self.inflight) < SUBMIT_WINDOW)


@SWEEP_BACKENDS.register("service", description="shard specs across "
                         "repro serve endpoints (--shard URL, "
                         "repeatable); falls back to process when every "
                         "shard dies")
class ServiceBackend(SweepBackend):
    name = "service"

    def __init__(self) -> None:
        self.shard_urls: List[str] = []
        #: Records ingested from shards (remote simulations + remote
        #: cache hits) — the service-path share of the engine's
        #: ``simulations_run``.
        self.ingested = 0
        #: Specs requeued uncharged because their shard died.
        self.requeued = 0
        #: Shards marked dead during the sweep, in order.
        self.dead_shards: List[str] = []
        #: Specs handed to the process-backend fallback.
        self.fallback_specs = 0

    def configure(self, shards: List[str]) -> "ServiceBackend":
        if not shards:
            raise ValueError(
                "the 'service' sweep backend needs at least one shard "
                "URL (--shard http://HOST:PORT, repeatable)")
        self.shard_urls = [url.rstrip("/") for url in shards]
        return self

    # ------------------------------------------------------------------
    def execute(self, engine, misses, results, workload_lookup,
                failures) -> None:
        shards = [_Shard(url) for url in self.shard_urls]
        leftovers = self._drive(engine, shards, misses, results, failures)
        if leftovers and not engine._abandoned:
            self.fallback_specs = len(leftovers)
            print(f"[sweep] warning: every service shard is gone; "
                  f"falling back to the process backend for "
                  f"{len(leftovers)} outstanding run(s)", file=sys.stderr)
            ProcessBackend().execute(engine, leftovers, results,
                                     workload_lookup, failures)

    # ------------------------------------------------------------------
    def _drive(self, engine, shards: List[_Shard], misses, results,
               failures) -> List[RunSpec]:
        """Submit/poll loop; returns the specs no shard could finish."""
        attempts: Dict[RunSpec, int] = {}
        # (ready_at, spec): ready_at > now while a retry is backing off.
        pending: List[Tuple[float, RunSpec]] = [(0.0, spec)
                                                for spec in misses]
        interval = POLL_MIN
        while ((pending or any(shard.inflight for shard in shards))
               and not engine._abandoned):
            live = [shard for shard in shards if shard.alive]
            if not live:
                break
            if (pending and not any(shard.inflight for shard in shards)
                    and all(shard.draining for shard in live)):
                # Every surviving shard is draining away: nothing will
                # ever accept the pending specs — hand them to the
                # fallback instead of polling forever.
                break
            now = time.monotonic()
            # Round-robin: one spec per accepting shard per pass, so the
            # cross-product spreads across shards instead of saturating
            # the first one's window before the second sees any work.
            submitted = True
            while submitted and not engine._abandoned:
                submitted = False
                for shard in live:
                    if not shard.accepting(now):
                        continue
                    item = next((it for it in pending if it[0] <= now),
                                None)
                    if item is None:
                        break
                    pending.remove(item)
                    self._submit(engine, shard, item[1], attempts,
                                 pending, results, failures)
                    submitted = True
            progressed = 0
            for shard in list(live):
                if shard.alive and shard.inflight:
                    progressed += self._poll(engine, shard, attempts,
                                             pending, results, failures)
                if engine._abandoned:
                    break
            if engine._abandoned:
                break
            if progressed:
                interval = POLL_MIN
            elif pending or any(shard.inflight for shard in shards):
                time.sleep(interval)
                interval = min(interval * 1.6, POLL_MAX)
        leftovers: List[RunSpec] = []
        for shard in shards:
            for flight in shard.inflight.values():
                leftovers.append(flight.spec)
            shard.inflight.clear()
        leftovers.extend(spec for _, spec in pending)
        return list(dict.fromkeys(leftovers))

    # ------------------------------------------------------------------
    def _shard_down(self, shard: _Shard, reason: str, pending,
                    now: Optional[float] = None) -> None:
        """Mark a shard dead and requeue its in-flight specs uncharged —
        the shard, not the runs, failed (mirrors ``_pool_broken``)."""
        shard.alive = False
        self.dead_shards.append(shard.url)
        stranded = [flight.spec for flight in shard.inflight.values()]
        shard.inflight.clear()
        now = time.monotonic() if now is None else now
        for spec in stranded:
            pending.append((now, spec))
        self.requeued += len(stranded)
        print(f"[sweep] warning: shard {shard.url} is down ({reason}); "
              f"requeued {len(stranded)} in-flight run(s) to the "
              f"surviving shards", file=sys.stderr)

    def _charge(self, engine, spec: RunSpec, kind: str, error: str,
                attempts, pending, failures) -> None:
        """One failed attempt against a spec: requeue with backoff until
        the policy's retry budget is spent, then fail permanently."""
        attempts[spec] = attempts.get(spec, 0) + 1
        if attempts[spec] > engine.policy.retries:
            engine._fail_spec(spec, kind, error, attempts[spec], failures)
        else:
            ready_at = (time.monotonic()
                        + engine.policy.backoff_for(attempts[spec]))
            pending.append((ready_at, spec))

    # ------------------------------------------------------------------
    def _submit(self, engine, shard: _Shard, spec: RunSpec, attempts,
                pending, results, failures) -> None:
        digest = spec.digest()
        doc = {"runspec": spec.to_dict(),
               "name": f"sweep:{spec.workload}/{spec.mode}"
                       f"@{spec.n_cores}c"}
        try:
            status, envelope, headers = shard.client.submit(doc)
        except (ShardUnavailable, ShardProtocolError) as exc:
            pending.append((time.monotonic(), spec))
            self._shard_down(shard, str(exc), pending)
            return
        if status == 429:
            # Queue full: honor the shard's Retry-After and try the spec
            # elsewhere (or here, later).
            shard.not_before = (time.monotonic()
                                + retry_after(headers, 1.0))
            pending.append((time.monotonic(), spec))
            return
        if status == 503:
            # Draining: the shard finishes what it accepted but takes no
            # more; poll its in-flight jobs, submit everything else
            # elsewhere.
            shard.draining = True
            pending.append((time.monotonic(), spec))
            return
        if status in (400, 413):
            # The shard understood the request and rejected the document
            # — deterministic, so retrying anywhere is pointless.
            message = envelope.get("error", {}).get("message", "rejected")
            engine._fail_spec(spec, "error",
                              f"shard {shard.url} rejected the runspec: "
                              f"{message}",
                              attempts.get(spec, 0) + 1, failures)
            return
        data = envelope.get("data") if envelope.get("ok") else None
        if status in (200, 202) and isinstance(data, dict):
            if data.get("id") != digest:
                # Digest skew: the shard canonicalises specs differently
                # (version mismatch) — nothing it computes is safe to
                # ingest under our key.
                pending.append((time.monotonic(), spec))
                self._shard_down(shard,
                                 f"digest skew (shard derived "
                                 f"{data.get('id')!r})", pending)
                return
            if data.get("status") == "done":
                self._ingest(engine, shard, spec, attempts, pending,
                             results, failures)
            elif data.get("status") == "failed":
                self._charge_remote_failure(engine, spec, data, attempts,
                                            pending, failures, shard)
            else:
                shard.inflight[digest] = _Flight(spec)
            return
        self._charge(engine, spec, "error",
                     f"shard {shard.url} answered HTTP {status} to a "
                     f"job submission", attempts, pending, failures)

    # ------------------------------------------------------------------
    def _poll(self, engine, shard: _Shard, attempts, pending, results,
              failures) -> int:
        """Advance one shard's in-flight jobs; returns completions."""
        policy = engine.policy
        progressed = 0
        for digest in list(shard.inflight):
            flight = shard.inflight.get(digest)
            if flight is None:
                continue
            try:
                status, envelope, _ = shard.client.job(digest)
            except (ShardUnavailable, ShardProtocolError) as exc:
                self._shard_down(shard, str(exc), pending)
                return progressed
            data = envelope.get("data") if envelope.get("ok") else None
            state = data.get("status") if isinstance(data, dict) else None
            now = time.monotonic()
            if status == 200 and state == "done":
                del shard.inflight[digest]
                self._ingest(engine, shard, flight.spec, attempts,
                             pending, results, failures)
                progressed += 1
            elif status == 200 and state == "failed":
                del shard.inflight[digest]
                self._charge_remote_failure(engine, flight.spec,
                                            data, attempts, pending,
                                            failures, shard)
                progressed += 1
            elif status == 200 and state in ("queued", "running"):
                if (state == "running" and flight.deadline is None
                        and policy.timeout):
                    flight.deadline = now + policy.timeout
                if flight.deadline is not None and now > flight.deadline:
                    # The shard may still finish it eventually (its
                    # result then lands in the shard's own cache only);
                    # our budget for the run is spent.
                    del shard.inflight[digest]
                    self._charge(engine, flight.spec, "timeout",
                                 f"run exceeded the {policy.timeout}s "
                                 f"wall-clock timeout on shard "
                                 f"{shard.url}",
                                 attempts, pending, failures)
            else:
                # 404 (a shard that lost the job) or any other surprise:
                # charge one attempt and place the spec back in rotation.
                del shard.inflight[digest]
                self._charge(engine, flight.spec, "error",
                             f"shard {shard.url} answered HTTP {status} "
                             f"({state or 'no status'}) while polling",
                             attempts, pending, failures)
            if engine._abandoned:
                break
        return progressed

    # ------------------------------------------------------------------
    def _ingest(self, engine, shard: _Shard, spec: RunSpec, attempts,
                pending, results, failures) -> None:
        """Fetch a completed job's cache record and complete it through
        the engine — verifying schema, spec identity and fingerprint, so
        a corrupt or mismatched shard record reads as a failed attempt,
        never as a silently wrong result."""
        digest = spec.digest()
        try:
            status, envelope, _ = shard.client.result(digest)
        except (ShardUnavailable, ShardProtocolError) as exc:
            pending.append((time.monotonic(), spec))
            self._shard_down(shard, str(exc), pending)
            return
        record = None
        if status == 200 and envelope.get("ok"):
            record = envelope.get("data", {}).get("record")
        if not isinstance(record, dict):
            self._charge(engine, spec, "error",
                         f"shard {shard.url} reported the job done but "
                         f"returned HTTP {status} for its result record",
                         attempts, pending, failures)
            return
        if record.get("schema") != CACHE_SCHEMA_VERSION:
            self._charge(engine, spec, "error",
                         f"shard {shard.url} returned a schema-"
                         f"{record.get('schema')} record (expected "
                         f"{CACHE_SCHEMA_VERSION})",
                         attempts, pending, failures)
            return
        stored_spec = record.get("spec")
        if (not isinstance(stored_spec, dict)
                or _strip_result_neutral(stored_spec)
                != spec.canonical_dict()):
            self._charge(engine, spec, "error",
                         f"shard {shard.url} returned a record for a "
                         f"different spec (digest collision or skew)",
                         attempts, pending, failures)
            return
        try:
            engine._complete(spec, results, record=record,
                             attempts=attempts.get(spec, 0) + 1)
        except (KeyboardInterrupt, SystemExit):
            raise
        except (ValueError, KeyError, TypeError, AttributeError) as exc:
            # FingerprintMismatch or a malformed result payload.
            self._charge(engine, spec, "error",
                         f"shard {shard.url} returned an invalid record "
                         f"({type(exc).__name__}: {exc})",
                         attempts, pending, failures)
            return
        self.ingested += 1

    def _charge_remote_failure(self, engine, spec: RunSpec, data: Dict,
                               attempts, pending, failures,
                               shard: _Shard) -> None:
        failure = data.get("failure") or {}
        kind = failure.get("kind", "error")
        self._charge(engine, spec, kind,
                     f"shard {shard.url} failed the run after "
                     f"{failure.get('attempts', '?')} server-side "
                     f"attempt(s): {failure.get('error', 'unknown')}",
                     attempts, pending, failures)
