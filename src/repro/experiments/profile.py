"""``repro profile``: cProfile harness with per-subsystem attribution.

Profiling drove the allocation-free rewrite of the memory-hierarchy hot
path (flat-column caches, packed-bitmap directory, flat-array DRAM banks,
the generator-based core scheduler), and this module keeps that workflow
reproducible: one command runs a workload under :mod:`cProfile`, buckets
the self-time of every function into the simulator subsystem that owns it,
and prints a table answering "where does a simulated cycle's wall time
go?".

The subsystem map is intentionally coarse — it mirrors the units a perf PR
touches (cache, directory, DRAM, NoC/queueing, prefetchers, core/
scheduler) rather than individual functions; ``--top`` lists the hottest
individual functions for drill-down.
"""

from __future__ import annotations

import cProfile
import pstats
import sys
import time
from typing import Dict, List, Optional, Tuple

#: Ordered (path fragment, subsystem) rules; first match wins.  Paths use
#: forward slashes after normalisation.
SUBSYSTEM_RULES: Tuple[Tuple[str, str], ...] = (
    ("repro/memory/cache", "cache"),
    ("repro/memory/hierarchy", "hierarchy"),
    ("repro/memory/coherence", "directory"),
    ("repro/memory/dram", "dram"),
    # The NoC splits into the link-reservation kernel (the hot loop)
    # versus geometry / route caching / traffic accounting, so a profile
    # shows whether NoC time is placement work or bookkeeping.
    # ResourceSchedule gets its own bucket: it is the shared reservation
    # primitive — DRAM banks/channels/buses always, the NoC only under
    # the reference backend — so folding it into noc.kernel would
    # misattribute DRAM time whenever the default fused backend (which
    # never enters queueing.py) is active.
    ("repro/noc/kernel", "noc.kernel"),
    ("repro/sim/queueing", "queueing"),
    ("repro/noc/", "noc.geometry"),
    ("repro/prefetchers/", "prefetcher"),
    ("repro/core/", "prefetcher"),
    ("repro/mem_image", "mem-image"),
    ("repro/sim/core_model", "core"),
    ("repro/sim/system", "scheduler"),
    ("repro/sim/trace", "trace"),
    ("repro/workloads/", "workload-build"),
)

OTHER = "other"


def subsystem_of(filename: str, funcname: str = "") -> str:
    """Map a profiled frame to its simulator subsystem bucket.

    Python frames carry a source path and match the path-fragment rules.
    Built-in/extension frames have no source file — cProfile records them
    under the pseudo-filename ``'~'`` with the function's qualified name —
    so extension hot paths are matched on ``funcname`` instead: the
    compiled NoC kernel's reservation loop (``repro._nockernel``) belongs
    to ``noc.kernel`` exactly like its pure-Python siblings, not to a
    generic builtins bucket (and emphatically not to whichever caller the
    time would otherwise be misread against).
    """
    if "_nockernel" in funcname:
        return "noc.kernel"
    path = filename.replace("\\", "/")
    for fragment, name in SUBSYSTEM_RULES:
        if fragment in path:
            return name
    return OTHER


def profile_run(workload_name: str, prefetcher: str = "imp",
                cores: int = 16, seed: int = 1,
                quick: bool = False) -> Dict:
    """Profile one simulation run; return the attribution document.

    The workload's trace is built (and memoised) *before* profiling starts,
    so the report covers the steady-state simulation loop — the part perf
    PRs optimise — not trace generation.
    """
    from repro.experiments.bench import _make_workload
    from repro.experiments.configs import scaled_config
    from repro.sim.system import run_workload

    workload = _make_workload(workload_name, seed, quick)
    config = scaled_config(cores)
    workload.cached_build(cores)          # excluded from the profile

    profiler = cProfile.Profile()
    wall_start = time.perf_counter()
    profiler.enable()
    result = run_workload(workload, config, prefetcher=prefetcher)
    profiler.disable()
    wall = time.perf_counter() - wall_start

    stats = pstats.Stats(profiler)
    subsystems: Dict[str, Dict[str, float]] = {}
    functions: List[Tuple[float, int, str]] = []
    total_self = 0.0
    for (filename, lineno, name), (cc, nc, tt, ct, callers) in \
            stats.stats.items():
        bucket = subsystems.setdefault(
            subsystem_of(filename, name), {"self_seconds": 0.0, "calls": 0})
        bucket["self_seconds"] += tt
        bucket["calls"] += nc
        total_self += tt
        functions.append(
            (tt, nc, f"{filename.replace(chr(92), '/').rsplit('/', 1)[-1]}"
                     f":{name}"))
    functions.sort(reverse=True)

    fingerprint = result.stats.fingerprint()
    cycles = fingerprint["runtime_cycles"]
    return {
        "schema": "repro-profile-v1",
        "workload": workload_name,
        "prefetcher": prefetcher,
        "cores": cores,
        "seed": seed,
        "quick": quick,
        "wall_seconds": wall,
        "profiled_seconds": total_self,
        "runtime_cycles": cycles,
        "cycles_per_wall_second": cycles / wall if wall > 0 else 0.0,
        "fingerprint": fingerprint,
        "subsystems": {
            name: {
                "self_seconds": bucket["self_seconds"],
                "calls": bucket["calls"],
                "share": (bucket["self_seconds"] / total_self
                          if total_self else 0.0),
            }
            for name, bucket in subsystems.items()
        },
        "top_functions": [
            {"self_seconds": tt, "calls": nc, "function": label}
            for tt, nc, label in functions[:40]
        ],
    }


def format_report(document: Dict, top: int = 12, out=sys.stdout) -> None:
    """Pretty-print a profile document as two tables."""
    print(f"workload          : {document['workload']}"
          f"/{document['prefetcher']} "
          f"({document['cores']} cores, seed {document['seed']})", file=out)
    print(f"wall time         : {document['wall_seconds']:.3f} s "
          f"(cProfile overhead included)", file=out)
    print(f"simulated cycles  : {document['runtime_cycles']} "
          f"({document['cycles_per_wall_second']:,.0f} cycles/s)", file=out)
    print(file=out)
    print(f"{'subsystem':16s} {'self(s)':>9s} {'share':>7s} {'calls':>12s}",
          file=out)
    ordered = sorted(document["subsystems"].items(),
                     key=lambda item: -item[1]["self_seconds"])
    for name, bucket in ordered:
        print(f"{name:16s} {bucket['self_seconds']:9.3f} "
              f"{100 * bucket['share']:6.1f}% {bucket['calls']:12d}",
              file=out)
    print(file=out)
    print(f"{'top functions':44s} {'self(s)':>9s} {'calls':>12s}", file=out)
    for row in document["top_functions"][:top]:
        print(f"{row['function']:44s} {row['self_seconds']:9.3f} "
              f"{row['calls']:12d}", file=out)
