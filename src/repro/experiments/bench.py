"""Wall-clock benchmark of the simulation core (importable harness).

Measures what the repository actually spends its time on: sweeping a
workload across prefetcher configurations (every figure of the paper is such
a sweep).  For each benchmark workload the harness runs ``repro.sim.system.
run_workload`` once per prefetcher and records

* per-run wall-clock seconds,
* a statistics fingerprint (runtime cycles, hit/miss/prefetch counters and
  traffic totals) so that two harness runs can be compared for *simulation
  fidelity*, not just speed.

Results are written as JSON (``BENCH_<n>.json`` at the repository root by
convention).  ``compare(...)`` checks a fresh result against a committed
baseline: fingerprints must match exactly and wall-clock must stay within a
regression budget.

Run it via the CLI (``repro bench``) or via the thin wrapper
``benchmarks/perf/bench_sim.py``.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import platform
import sys
import time
from typing import Dict, List, Optional, Tuple

from repro.experiments.configs import scaled_config
from repro.sim.system import run_workload
from repro.workloads import make_workload
from repro.workloads.synthetic import IndirectStreamWorkload

#: Prefetcher configurations swept per workload (the paper's main axes).
PREFETCHERS = ("none", "stream", "ghb", "imp")

#: Benchmark workloads: the two headline paper kernels plus the synthetic
#: indirect-stream kernel (pure A[B[i]] pattern, no matrix build cost).
WORKLOADS = ("spmv", "pagerank", "indirect_stream")


def _make_workload(name: str, seed: int, quick: bool):
    if name == "indirect_stream":
        return IndirectStreamWorkload(n_indices=4096 if quick else 16384,
                                      seed=seed)
    if name == "spmv":
        return (make_workload(name, seed=seed, nx=8, ny=8, nz=8) if quick
                else make_workload(name, seed=seed))
    if name == "pagerank":
        return (make_workload(name, seed=seed, n_vertices=1024) if quick
                else make_workload(name, seed=seed))
    return make_workload(name, seed=seed)


def _geomean(values: List[float]) -> Optional[float]:
    import math
    if not values:
        return None
    return math.exp(sum(math.log(value) for value in values) / len(values))


def run_benchmark(cores: int = 16, seed: int = 1, repeat: int = 1,
                  quick: bool = False, workloads: Optional[List[str]] = None,
                  ab_kernels: Optional[List[str]] = None,
                  out=sys.stdout) -> Dict:
    """Run the harness; return the result document (also printed as a table).

    ``repeat`` re-runs the whole suite and keeps the best (minimum) wall
    time per scenario, which filters scheduler noise on busy machines.

    ``ab_kernels`` names two or more NoC reservation-kernel backends
    (:data:`repro.registry.NOC_KERNELS`) to A/B (N-way) in the *same
    session*: every scenario runs once per backend per repeat,
    interleaved, so all sides see the same machine state.  This is the
    only honest way to compare backends — wall-clock ratios against a
    committed baseline file conflate the code change with host-speed
    drift between recording dates.  The document gains a ``kernel_ab``
    section (per-backend walls, per-scenario speedups against the first
    named backend, miss-heavy geomean per backend) and its main
    ``scenarios`` table carries the default backend's numbers;
    fingerprints must be bit-identical across backends (hard failure
    otherwise).
    """
    from dataclasses import replace

    from repro.registry import NOC_KERNELS
    from repro.sim.config import NoCConfig

    chosen = list(workloads or WORKLOADS)
    scenarios: List[Tuple[str, str]] = [(w, p) for w in chosen
                                        for p in PREFETCHERS]
    kernels: List[Optional[str]] = list(ab_kernels) if ab_kernels else [None]
    for name in kernels:
        if name is not None:
            entry = NOC_KERNELS.get(name)   # fail fast on typos
            if not entry.is_available():
                # The mesh would silently substitute 'fused' and turn
                # this lane of the A/B into an A/A; refuse instead.
                raise RuntimeError(
                    f"cannot A/B kernel {name!r}: unavailable on this "
                    f"host (extension not built, or $REPRO_NO_CEXT=1)")
    # best[kernel][scenario key] -> minimum wall seconds over repeats.
    best: Dict[Optional[str], Dict[str, float]] = {k: {} for k in kernels}
    fingerprints: Dict[str, Dict[str, int]] = {}
    # An exported $REPRO_NOC_KERNEL would silently override the per-run
    # config and turn the A/B into an A/A; measure without it.
    ambient = os.environ.pop("REPRO_NOC_KERNEL", None)
    if ambient is not None and ab_kernels:
        print(f"[bench] NOTE: ignoring $REPRO_NOC_KERNEL={ambient!r} "
              f"for the kernel A/B", file=out)
    try:
        for _ in range(max(1, repeat)):
            for kernel in kernels:
                for workload_name in chosen:
                    # One workload object per sweep: run_workload memoises
                    # the trace build on it, which is exactly how the
                    # figure runners use it.
                    workload = _make_workload(workload_name, seed, quick)
                    config = scaled_config(cores)
                    if kernel is not None:
                        config = replace(config,
                                         noc=replace(config.noc,
                                                     kernel=kernel))
                    for prefetcher in PREFETCHERS:
                        key = f"{workload_name}/{prefetcher}"
                        t0 = time.perf_counter()
                        result = run_workload(workload, config,
                                              prefetcher=prefetcher)
                        elapsed = time.perf_counter() - t0
                        walls = best[kernel]
                        if key not in walls or elapsed < walls[key]:
                            walls[key] = elapsed
                        fp = result.stats.fingerprint()
                        if key in fingerprints and fingerprints[key] != fp:
                            raise AssertionError(
                                f"fingerprint divergence for {key}"
                                + (f" under kernel {kernel!r}" if ab_kernels
                                   else " (non-deterministic simulation)"))
                        fingerprints[key] = fp
    finally:
        if ambient is not None:
            os.environ["REPRO_NOC_KERNEL"] = ambient
    # The headline table reports the default backend when it was part of
    # the A/B (else the first named one / the configured default).
    default_kernel: Optional[str] = kernels[0]
    if ab_kernels and NoCConfig().kernel in kernels:
        default_kernel = NoCConfig().kernel
    headline = best[default_kernel]
    total = sum(headline.values())
    print(f"{'scenario':28s} {'wall(s)':>8s} {'cycles':>10s} "
          f"{'l1_miss':>9s} {'pf_issued':>9s}", file=out)
    for workload_name, prefetcher in scenarios:
        key = f"{workload_name}/{prefetcher}"
        fp = fingerprints[key]
        print(f"{key:28s} {headline[key]:8.3f} {fp['runtime_cycles']:10d} "
              f"{fp['l1_misses']:9d} {fp['prefetches_issued']:9d}", file=out)
    print(f"{'TOTAL':28s} {total:8.3f}", file=out)
    document = {
        "schema": "repro-bench-v1",
        "cores": cores,
        "seed": seed,
        "repeat": repeat,
        "quick": quick,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "scenarios": {key: {"wall_seconds": headline[key],
                            "fingerprint": fingerprints[key]}
                      for key in headline},
        "total_wall_seconds": total,
    }
    if ab_kernels:
        document["kernel_ab"] = _kernel_ab_section(
            kernels, best, scenario_keys=[f"{w}/{p}" for w, p in scenarios],
            out=out)
    return document


def _kernel_ab_section(kernels: List[Optional[str]],
                       best: Dict[Optional[str], Dict[str, float]],
                       scenario_keys: List[str], out=sys.stdout) -> Dict:
    """Summarise a same-session kernel A/B (and print its table).

    The first named backend is the comparison baseline; speedups are
    ``baseline_wall / backend_wall`` per scenario (>1 = the backend is
    faster).  Fingerprint identity across backends was already enforced
    during collection, so the section records it as a fact, not a claim.
    """
    baseline = kernels[0]
    others = [k for k in kernels[1:]]
    header = f"{'scenario':28s} " + " ".join(
        f"{str(k):>12s}" for k in kernels)
    if others:
        header += "  " + " ".join(f"{f'{k} speedup':>14s}" for k in others)
    print(f"\n[bench] same-session kernel A/B "
          f"(baseline: {baseline})", file=out)
    print(header, file=out)
    speedups: Dict[str, Dict[str, float]] = {k: {} for k in others}
    for key in scenario_keys:
        row = f"{key:28s} " + " ".join(
            f"{best[k][key]:12.3f}" for k in kernels)
        for k in others:
            speedups[k][key] = best[baseline][key] / max(1e-9, best[k][key])
        if others:
            row += "  " + " ".join(f"{speedups[k][key]:13.2f}x"
                                   for k in others)
        print(row, file=out)
    miss_heavy = sorted(key for key in scenario_keys
                        if key.split("/")[-1] in MISS_HEAVY_PREFETCHERS)
    geomeans = {
        k: _geomean([speedups[k][key] for key in miss_heavy])
        for k in others
    }
    for k, value in geomeans.items():
        if value is not None:
            print(f"[bench] kernel A/B miss-heavy (ghb/imp) geomean: "
                  f"{k} vs {baseline} = {value:.2f}x", file=out)
    return {
        "kernels": [str(k) for k in kernels],
        "baseline_kernel": str(baseline),
        "fingerprints_identical": True,     # enforced during collection
        "wall_seconds": {str(k): dict(best[k]) for k in kernels},
        "speedup_by_scenario": {k: speedups[k] for k in others},
        "miss_heavy_rows": miss_heavy,
        "miss_heavy_geomean_speedup": geomeans,
    }


# ----------------------------------------------------------------------
# Sweep-level benchmark (the parallel engine + persistent result cache)
# ----------------------------------------------------------------------

#: Figures timed by the sweep benchmark.  They deliberately share runs
#: (Base/PerfPref/IMP at one core count appear in several of them) so the
#: batched prefetch path's deduplication is part of what is measured.
SWEEP_FIGURES = ("fig1", "fig2", "fig9", "table3", "fig10", "fig12")
SWEEP_FIGURES_QUICK = ("fig1", "fig2", "table3", "fig10")


def _sweep_phase(names, cores: int, scale: float, seed: int,
                 jobs: Optional[int], cache_dir) -> Dict:
    """Build every figure in ``names`` once and time it end to end.

    Returns wall seconds, simulation/cache counters, and one fingerprint
    per unique underlying run so phases can be compared for fidelity.
    """
    from repro.cli import FIGURES
    from repro.experiments import figures
    from repro.experiments.runner import ExperimentRunner

    runner = ExperimentRunner(scale=scale, seed=seed,
                              base_config=scaled_config(cores),
                              jobs=jobs, cache_dir=cache_dir)
    t0 = time.perf_counter()
    figures.prefetch_figures(runner, names, [cores])
    for name in names:
        FIGURES[name](runner, cores)
    wall = time.perf_counter() - t0
    # One fingerprint per unique run.  The key carries the full cache key —
    # including the IMP-config signature, which distinguishes the
    # sensitivity-figure runs that share (workload, mode, cores) — hashed
    # down to a JSON-friendly suffix.
    fingerprints = {
        f"{key[0]}/{key[1]}/{key[2]}/"
        f"{hashlib.sha256(repr(key[3:]).encode()).hexdigest()[:8]}":
        record.result.stats.fingerprint()
        for key, record in runner.cached_records()}
    cache = runner.engine.cache
    return {
        "wall_seconds": wall,
        "simulations": runner.engine.simulations_run,
        "unique_runs": len(fingerprints),
        "cache_hits": cache.hits if cache else 0,
        "fingerprints": fingerprints,
    }


def run_sweep_benchmark(cores: int = 16, seed: int = 1, scale: float = 0.15,
                        jobs: Optional[int] = None, quick: bool = False,
                        figures: Optional[List[str]] = None,
                        out=sys.stdout) -> Dict:
    """Benchmark the sweep engine: serial vs parallel vs warm cache.

    Three phases build the same multi-figure set back-to-back:

    1. ``serial`` — one process, no disk cache: the PR 1 serial engine.
    2. ``parallel`` — ``jobs`` worker processes, cold disk cache.
    3. ``warm_cache`` — same cache directory again; must simulate nothing.

    All three phases must produce bit-identical stat fingerprints for
    every underlying run.
    """
    import shutil
    import tempfile

    from repro.experiments.sweep import resolve_jobs

    if quick:
        cores, scale = min(cores, 4), min(scale, 0.05)
        names = tuple(figures or SWEEP_FIGURES_QUICK)
    else:
        names = tuple(figures or SWEEP_FIGURES)
    # One documented rule (see resolve_jobs): explicit --jobs, else
    # $REPRO_JOBS, else 4 — the benchmark exists to measure the parallel
    # engine, so its fallback default is parallel.  0 = auto (all CPUs);
    # an explicit --jobs 1 is honoured.
    jobs = max(1, resolve_jobs(jobs, default=4))
    cache_dir = tempfile.mkdtemp(prefix="repro-sweep-bench-")
    try:
        print(f"[sweep-bench] figures={','.join(names)} cores={cores} "
              f"scale={scale} jobs={jobs}", file=out)
        serial = _sweep_phase(names, cores, scale, seed, jobs=1,
                              cache_dir=None)
        print(f"[sweep-bench] serial    : {serial['wall_seconds']:8.3f}s  "
              f"({serial['simulations']} simulations)", file=out)
        parallel = _sweep_phase(names, cores, scale, seed, jobs=jobs,
                                cache_dir=cache_dir)
        print(f"[sweep-bench] parallel  : {parallel['wall_seconds']:8.3f}s  "
              f"({parallel['simulations']} simulations, {jobs} jobs)",
              file=out)
        warm = _sweep_phase(names, cores, scale, seed, jobs=jobs,
                            cache_dir=cache_dir)
        print(f"[sweep-bench] warm cache: {warm['wall_seconds']:8.3f}s  "
              f"({warm['simulations']} simulations, "
              f"{warm['cache_hits']} cache hits)", file=out)
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    identical = (serial["fingerprints"] == parallel["fingerprints"]
                 == warm["fingerprints"])
    speedups = {
        "parallel_vs_serial": (serial["wall_seconds"]
                               / max(1e-9, parallel["wall_seconds"])),
        "warm_vs_serial": (serial["wall_seconds"]
                           / max(1e-9, warm["wall_seconds"])),
    }
    print(f"[sweep-bench] fingerprints identical: {identical}; "
          f"parallel speedup {speedups['parallel_vs_serial']:.2f}x, "
          f"warm-cache speedup {speedups['warm_vs_serial']:.2f}x", file=out)
    fingerprints = serial.pop("fingerprints")
    for phase in (parallel, warm):
        phase.pop("fingerprints")
    return {
        "schema": "repro-sweep-bench-v1",
        "cores": cores,
        "seed": seed,
        "scale": scale,
        "jobs": jobs,
        "quick": quick,
        "figures": list(names),
        "python": platform.python_version(),
        "machine": platform.machine(),
        # Parallel scaling is bounded by the host's core count; record it
        # so single-core CI boxes don't read as engine regressions.
        "cpus": os.cpu_count(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "phases": {"serial": serial, "parallel": parallel,
                   "warm_cache": warm},
        "fingerprints": fingerprints,
        "fingerprints_identical": identical,
        "speedup": speedups,
    }


def sweep_scaling_section(cores: int = 16, seed: int = 1,
                          scale: float = 0.15, jobs: Optional[int] = None,
                          quick: bool = False, out=sys.stdout) -> Dict:
    """Multi-worker sweep scaling: ``--jobs 1`` vs ``--jobs N`` back to
    back in one session (ROADMAP's "step zero" for distributed sweeps).

    On a single-CPU host the measurement would be meaningless (process
    pools can only add overhead), so the section records a *documented
    skip* — the host's CPU count and why nothing was measured — instead
    of a number that would be misread as an engine regression.  The first
    multi-core recording host fills in the real measurement.
    """
    cpus = os.cpu_count() or 1
    if cpus <= 1:
        print(f"[bench] sweep scaling: SKIPPED (host has {cpus} CPU; "
              f"--jobs 1 vs --jobs N needs a multi-core host)", file=out)
        return {
            "measured": False,
            "cpus": cpus,
            "skip_reason": "recording host has a single CPU; a "
                           "multi-worker measurement would only add "
                           "process-pool overhead (ROADMAP: measuring "
                           "sweep scaling on a multi-core box is still "
                           "open)",
        }
    jobs = max(2, int(jobs)) if jobs is not None else min(cpus, 4)
    names = tuple(SWEEP_FIGURES_QUICK if quick else SWEEP_FIGURES)
    if quick:
        cores, scale = min(cores, 4), min(scale, 0.05)
    print(f"[bench] sweep scaling: --jobs 1 vs --jobs {jobs} "
          f"({cpus} CPUs)", file=out)
    serial = _sweep_phase(names, cores, scale, seed, jobs=1, cache_dir=None)
    parallel = _sweep_phase(names, cores, scale, seed, jobs=jobs,
                            cache_dir=None)
    identical = serial["fingerprints"] == parallel["fingerprints"]
    for phase in (serial, parallel):
        phase.pop("fingerprints")
    speedup = serial["wall_seconds"] / max(1e-9, parallel["wall_seconds"])
    print(f"[bench] sweep scaling: jobs=1 {serial['wall_seconds']:.3f}s, "
          f"jobs={jobs} {parallel['wall_seconds']:.3f}s -> "
          f"{speedup:.2f}x (fingerprints identical: {identical})", file=out)
    return {
        "measured": True,
        "cpus": cpus,
        "jobs": jobs,
        "figures": list(names),
        "jobs_1": serial,
        "jobs_n": parallel,
        "speedup": speedup,
        "fingerprints_identical": identical,
    }


#: Rows of the per-scenario harness counted as miss-heavy: the correlation
#: and indirect prefetchers run the full notification + fetch machinery on
#: the indirect-access workloads (the IMP paper's target), so they are the
#: slowest rows and the ones hot-path PRs are measured on.
MISS_HEAVY_PREFETCHERS = ("ghb", "imp")


def baseline_comparison(current: Dict, baseline: Dict) -> Dict:
    """Per-scenario speedups of ``current`` over ``baseline``.

    Returns a summary section embedded into ``BENCH_<n>.json`` documents:
    wall-clock speedup per shared scenario, whether every shared scenario's
    stat fingerprint is bit-identical, and the geometric-mean speedup over
    the miss-heavy (ghb/imp) rows.
    """
    base_scenarios = baseline.get("scenarios", {})
    speedups: Dict[str, float] = {}
    identical = True
    for key, entry in current.get("scenarios", {}).items():
        base = base_scenarios.get(key)
        if base is None:
            continue
        speedups[key] = base["wall_seconds"] / max(1e-9,
                                                   entry["wall_seconds"])
        if base.get("fingerprint") != entry.get("fingerprint"):
            identical = False
    if not speedups:
        # No shared scenario keys (wrong baseline document, renamed
        # scenarios): an "identical" claim would be vacuous, so report
        # the empty comparison as non-identical rather than silently
        # blessing it.
        identical = False
    miss_heavy = [value for key, value in speedups.items()
                  if key.split("/")[-1] in MISS_HEAVY_PREFETCHERS]
    geomean = _geomean(miss_heavy)
    return {
        "baseline_schema": baseline.get("schema"),
        "baseline_timestamp": baseline.get("timestamp"),
        "compared_scenarios": len(speedups),
        "speedup_by_scenario": speedups,
        "fingerprints_identical": identical,
        "miss_heavy_rows": sorted(
            key for key in speedups
            if key.split("/")[-1] in MISS_HEAVY_PREFETCHERS),
        "miss_heavy_geomean_speedup": geomean,
    }


def compare(current: Dict, baseline: Dict, budget: float = 1.25,
            out=sys.stdout) -> int:
    """Compare a fresh run against a baseline document.

    Returns a process exit code: non-zero when any fingerprint diverges
    (simulation behaviour changed) or total wall-clock exceeds
    ``budget`` x the baseline (performance regression).
    """
    failures = 0
    for knob in ("cores", "seed", "quick"):
        if current.get(knob) != baseline.get(knob):
            print(f"[bench] FAIL: {knob} mismatch (current="
                  f"{current.get(knob)!r}, baseline={baseline.get(knob)!r}) "
                  f"— runs are only comparable with identical parameters",
                  file=out)
            return 1
    base_scenarios = baseline.get("scenarios", {})
    missing = sorted(set(base_scenarios) - set(current["scenarios"]))
    if missing:
        # A shrunken suite must not silently pass: every baseline scenario
        # has to be re-measured for the comparison to mean anything.
        failures += 1
        print(f"[bench] FAIL: baseline scenarios not run: "
              f"{', '.join(missing)}", file=out)
    for key, entry in current["scenarios"].items():
        base = base_scenarios.get(key)
        if base is None:
            print(f"[bench] NOTE: no baseline for {key}", file=out)
            continue
        if entry["fingerprint"] != base["fingerprint"]:
            failures += 1
            print(f"[bench] FAIL: fingerprint mismatch for {key}", file=out)
            for field, value in entry["fingerprint"].items():
                if base["fingerprint"].get(field) != value:
                    print(f"         {field}: baseline="
                          f"{base['fingerprint'].get(field)} current={value}",
                          file=out)
    base_total = baseline.get("total_wall_seconds")
    cur_total = current["total_wall_seconds"]
    if base_total:
        ratio = cur_total / base_total
        print(f"[bench] wall: current={cur_total:.2f}s "
              f"baseline={base_total:.2f}s ratio={ratio:.2f} "
              f"(budget {budget:.2f})", file=out)
        if ratio > budget:
            failures += 1
            print(f"[bench] FAIL: wall-clock regression "
                  f"{ratio:.2f}x > {budget:.2f}x budget", file=out)
    if failures == 0:
        print("[bench] OK", file=out)
    return 1 if failures else 0


def check_sweep_document(document: Dict, min_warm_speedup: float = 3.0,
                         out=sys.stdout) -> int:
    """Validate a sweep benchmark document; returns a process exit code.

    Hard requirements: every phase produced bit-identical fingerprints and
    the warm-cache phase performed zero simulations.  The warm-cache
    rebuild must also beat the serial engine by ``min_warm_speedup``
    (machine-relative: both sides were timed back-to-back).
    """
    failures = 0
    if not document["fingerprints_identical"]:
        failures += 1
        print("[sweep-bench] FAIL: phases produced different fingerprints",
              file=out)
    warm = document["phases"]["warm_cache"]
    if warm["simulations"] != 0:
        failures += 1
        print(f"[sweep-bench] FAIL: warm-cache phase simulated "
              f"{warm['simulations']} runs (expected 0)", file=out)
    speedup = document["speedup"]["warm_vs_serial"]
    if speedup < min_warm_speedup:
        failures += 1
        print(f"[sweep-bench] FAIL: warm-cache speedup {speedup:.2f}x "
              f"< {min_warm_speedup:.2f}x", file=out)
    if failures == 0:
        print("[sweep-bench] OK", file=out)
    return 1 if failures else 0


def write_and_check(document: Dict, *, out_path: Optional[str],
                    check: bool, baseline_path: Optional[str],
                    budget: float, out=sys.stdout) -> int:
    """Shared tail of both entry points: persist the result document and
    optionally compare it against a baseline file.  Returns an exit code.

    ``--baseline`` without ``--check`` embeds a :func:`baseline_comparison`
    section into the document before it is written (the trajectory files
    ``BENCH_<n>.json`` record their speedup over the previous entry this
    way) instead of gating the exit code.
    """
    if (baseline_path and not check
            and document.get("schema") == "repro-bench-v1"):
        with open(baseline_path) as handle:
            baseline = json.load(handle)
        section = baseline_comparison(document, baseline)
        document["baseline_comparison"] = section
        geomean = section["miss_heavy_geomean_speedup"]
        if geomean is not None:
            print(f"[bench] miss-heavy (ghb/imp) geomean speedup vs "
                  f"{baseline_path}: {geomean:.2f}x "
                  f"(fingerprints identical: "
                  f"{section['fingerprints_identical']})", file=out)
    if out_path:
        with open(out_path, "w") as handle:
            json.dump(document, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"[bench] wrote {out_path}", file=out)
    if document.get("schema") == "repro-sweep-bench-v1":
        # Sweep documents carry their own invariants; validate them always.
        if check or baseline_path:
            print("[sweep-bench] NOTE: --check/--baseline comparison does "
                  "not apply to sweep documents; validating the sweep's "
                  "built-in invariants instead", file=out)
        return check_sweep_document(document, out=out)
    if check:
        if not baseline_path:
            print("[bench] --check requires --baseline", file=out)
            return 2
        with open(baseline_path) as handle:
            baseline = json.load(handle)
        return compare(document, baseline, budget=budget, out=out)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cores", type=int, default=16)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--repeat", type=int, default=1)
    parser.add_argument("--quick", action="store_true",
                        help="smaller inputs (CI smoke run)")
    parser.add_argument("--workloads", nargs="+", default=None,
                        choices=list(WORKLOADS))
    parser.add_argument("--ab-kernels", nargs="+", default=None,
                        metavar="KERNEL",
                        help="two or more NoC reservation-kernel backends "
                             "to A/B (N-way) in the same session (first = "
                             "comparison baseline); embeds a kernel_ab "
                             "section")
    parser.add_argument("--sweep-scaling", action="store_true",
                        help="additionally measure multi-worker sweep "
                             "scaling (--jobs 1 vs --jobs N) and embed a "
                             "sweep_scaling section; records a documented "
                             "skip on single-CPU hosts")
    parser.add_argument("--out", default=None,
                        help="write the result JSON to this path")
    parser.add_argument("--check", action="store_true",
                        help="compare against --baseline and set exit code")
    parser.add_argument("--baseline", default=None,
                        help="baseline JSON for --check")
    parser.add_argument("--budget", type=float, default=1.25,
                        help="allowed wall-clock ratio vs baseline")
    parser.add_argument("--sweep", action="store_true",
                        help="benchmark the multi-figure sweep engine "
                             "(serial vs --jobs vs warm cache)")
    parser.add_argument("--scale", type=float, default=0.15,
                        help="workload scale for --sweep")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for --sweep "
                             "(default: $REPRO_JOBS, else 4; 0 = auto)")
    args = parser.parse_args(argv)

    if args.sweep:
        document = run_sweep_benchmark(cores=args.cores, seed=args.seed,
                                       scale=args.scale, jobs=args.jobs,
                                       quick=args.quick)
    else:
        document = run_benchmark(cores=args.cores, seed=args.seed,
                                 repeat=args.repeat, quick=args.quick,
                                 workloads=args.workloads,
                                 ab_kernels=args.ab_kernels)
        if args.sweep_scaling:
            document["sweep_scaling"] = sweep_scaling_section(
                cores=args.cores, seed=args.seed, scale=args.scale,
                jobs=args.jobs, quick=args.quick)
    return write_and_check(document, out_path=args.out, check=args.check,
                           baseline_path=args.baseline, budget=args.budget)


if __name__ == "__main__":
    sys.exit(main())
