"""Wall-clock benchmark of the simulation core (importable harness).

Measures what the repository actually spends its time on: sweeping a
workload across prefetcher configurations (every figure of the paper is such
a sweep).  For each benchmark workload the harness runs ``repro.sim.system.
run_workload`` once per prefetcher and records

* per-run wall-clock seconds,
* a statistics fingerprint (runtime cycles, hit/miss/prefetch counters and
  traffic totals) so that two harness runs can be compared for *simulation
  fidelity*, not just speed.

Results are written as JSON (``BENCH_<n>.json`` at the repository root by
convention).  ``compare(...)`` checks a fresh result against a committed
baseline: fingerprints must match exactly and wall-clock must stay within a
regression budget.

Run it via the CLI (``repro bench``) or via the thin wrapper
``benchmarks/perf/bench_sim.py``.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import Dict, List, Optional, Tuple

from repro.experiments.configs import scaled_config
from repro.sim.system import SimulationResult, run_workload
from repro.workloads import make_workload
from repro.workloads.synthetic import IndirectStreamWorkload

#: Prefetcher configurations swept per workload (the paper's main axes).
PREFETCHERS = ("none", "stream", "ghb", "imp")

#: Benchmark workloads: the two headline paper kernels plus the synthetic
#: indirect-stream kernel (pure A[B[i]] pattern, no matrix build cost).
WORKLOADS = ("spmv", "pagerank", "indirect_stream")


def _make_workload(name: str, seed: int, quick: bool):
    if name == "indirect_stream":
        return IndirectStreamWorkload(n_indices=4096 if quick else 16384,
                                      seed=seed)
    if name == "spmv":
        return (make_workload(name, seed=seed, nx=8, ny=8, nz=8) if quick
                else make_workload(name, seed=seed))
    if name == "pagerank":
        return (make_workload(name, seed=seed, n_vertices=1024) if quick
                else make_workload(name, seed=seed))
    return make_workload(name, seed=seed)


def _fingerprint(result: SimulationResult) -> Dict[str, int]:
    stats = result.stats
    return {
        "runtime_cycles": stats.runtime_cycles,
        "instructions": stats.total_instructions,
        "mem_accesses": stats.total_mem_accesses,
        "l1_misses": stats.total_l1_misses,
        "l2_misses": sum(c.l2_misses for c in stats.cores),
        "prefetches_issued": stats.prefetches_issued,
        "prefetches_useful": stats.prefetches_useful,
        "prefetch_covered_misses": stats.prefetch_covered_misses,
        "noc_bytes": stats.traffic.noc_bytes,
        "dram_bytes": stats.traffic.dram_bytes,
    }


def run_benchmark(cores: int = 16, seed: int = 1, repeat: int = 1,
                  quick: bool = False, workloads: Optional[List[str]] = None,
                  out=sys.stdout) -> Dict:
    """Run the harness; return the result document (also printed as a table).

    ``repeat`` re-runs the whole suite and keeps the best (minimum) wall
    time per scenario, which filters scheduler noise on busy machines.
    """
    chosen = list(workloads or WORKLOADS)
    scenarios: List[Tuple[str, str]] = [(w, p) for w in chosen
                                        for p in PREFETCHERS]
    best: Dict[str, float] = {}
    fingerprints: Dict[str, Dict[str, int]] = {}
    for _ in range(max(1, repeat)):
        for workload_name in chosen:
            # One workload object per sweep: run_workload memoises the trace
            # build on it, which is exactly how the figure runners use it.
            workload = _make_workload(workload_name, seed, quick)
            config = scaled_config(cores)
            for prefetcher in PREFETCHERS:
                key = f"{workload_name}/{prefetcher}"
                t0 = time.perf_counter()
                result = run_workload(workload, config, prefetcher=prefetcher)
                elapsed = time.perf_counter() - t0
                if key not in best or elapsed < best[key]:
                    best[key] = elapsed
                fp = _fingerprint(result)
                if key in fingerprints and fingerprints[key] != fp:
                    raise AssertionError(
                        f"non-deterministic simulation for {key}")
                fingerprints[key] = fp
    total = sum(best.values())
    print(f"{'scenario':28s} {'wall(s)':>8s} {'cycles':>10s} "
          f"{'l1_miss':>9s} {'pf_issued':>9s}", file=out)
    for workload_name, prefetcher in scenarios:
        key = f"{workload_name}/{prefetcher}"
        fp = fingerprints[key]
        print(f"{key:28s} {best[key]:8.3f} {fp['runtime_cycles']:10d} "
              f"{fp['l1_misses']:9d} {fp['prefetches_issued']:9d}", file=out)
    print(f"{'TOTAL':28s} {total:8.3f}", file=out)
    return {
        "schema": "repro-bench-v1",
        "cores": cores,
        "seed": seed,
        "repeat": repeat,
        "quick": quick,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "scenarios": {key: {"wall_seconds": best[key],
                            "fingerprint": fingerprints[key]}
                      for key in best},
        "total_wall_seconds": total,
    }


def compare(current: Dict, baseline: Dict, budget: float = 1.25,
            out=sys.stdout) -> int:
    """Compare a fresh run against a baseline document.

    Returns a process exit code: non-zero when any fingerprint diverges
    (simulation behaviour changed) or total wall-clock exceeds
    ``budget`` x the baseline (performance regression).
    """
    failures = 0
    for knob in ("cores", "seed", "quick"):
        if current.get(knob) != baseline.get(knob):
            print(f"[bench] FAIL: {knob} mismatch (current="
                  f"{current.get(knob)!r}, baseline={baseline.get(knob)!r}) "
                  f"— runs are only comparable with identical parameters",
                  file=out)
            return 1
    base_scenarios = baseline.get("scenarios", {})
    missing = sorted(set(base_scenarios) - set(current["scenarios"]))
    if missing:
        # A shrunken suite must not silently pass: every baseline scenario
        # has to be re-measured for the comparison to mean anything.
        failures += 1
        print(f"[bench] FAIL: baseline scenarios not run: "
              f"{', '.join(missing)}", file=out)
    for key, entry in current["scenarios"].items():
        base = base_scenarios.get(key)
        if base is None:
            print(f"[bench] NOTE: no baseline for {key}", file=out)
            continue
        if entry["fingerprint"] != base["fingerprint"]:
            failures += 1
            print(f"[bench] FAIL: fingerprint mismatch for {key}", file=out)
            for field, value in entry["fingerprint"].items():
                if base["fingerprint"].get(field) != value:
                    print(f"         {field}: baseline="
                          f"{base['fingerprint'].get(field)} current={value}",
                          file=out)
    base_total = baseline.get("total_wall_seconds")
    cur_total = current["total_wall_seconds"]
    if base_total:
        ratio = cur_total / base_total
        print(f"[bench] wall: current={cur_total:.2f}s "
              f"baseline={base_total:.2f}s ratio={ratio:.2f} "
              f"(budget {budget:.2f})", file=out)
        if ratio > budget:
            failures += 1
            print(f"[bench] FAIL: wall-clock regression "
                  f"{ratio:.2f}x > {budget:.2f}x budget", file=out)
    if failures == 0:
        print("[bench] OK", file=out)
    return 1 if failures else 0


def write_and_check(document: Dict, *, out_path: Optional[str],
                    check: bool, baseline_path: Optional[str],
                    budget: float, out=sys.stdout) -> int:
    """Shared tail of both entry points: persist the result document and
    optionally compare it against a baseline file.  Returns an exit code."""
    if out_path:
        with open(out_path, "w") as handle:
            json.dump(document, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"[bench] wrote {out_path}", file=out)
    if check:
        if not baseline_path:
            print("[bench] --check requires --baseline", file=out)
            return 2
        with open(baseline_path) as handle:
            baseline = json.load(handle)
        return compare(document, baseline, budget=budget, out=out)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cores", type=int, default=16)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--repeat", type=int, default=1)
    parser.add_argument("--quick", action="store_true",
                        help="smaller inputs (CI smoke run)")
    parser.add_argument("--workloads", nargs="+", default=None,
                        choices=list(WORKLOADS))
    parser.add_argument("--out", default=None,
                        help="write the result JSON to this path")
    parser.add_argument("--check", action="store_true",
                        help="compare against --baseline and set exit code")
    parser.add_argument("--baseline", default=None,
                        help="baseline JSON for --check")
    parser.add_argument("--budget", type=float, default=1.25,
                        help="allowed wall-clock ratio vs baseline")
    args = parser.parse_args(argv)

    document = run_benchmark(cores=args.cores, seed=args.seed,
                             repeat=args.repeat, quick=args.quick,
                             workloads=args.workloads)
    return write_and_check(document, out_path=args.out, check=args.check,
                           baseline_path=args.baseline, budget=args.budget)


if __name__ == "__main__":
    sys.exit(main())
