"""Experiment runner with result caching.

Several figures share the same underlying simulations (e.g. the *Base* run
at 64 cores appears in Figures 2, 9b and 10), so the runner memoises results
by (workload, mode, core count, IMP-config signature) in memory, and —
when a cache directory is configured — persists them on disk via
:class:`repro.experiments.sweep.ResultCache` so repeated figure builds
across CLI invocations only simulate what changed.

Figures declare the runs they need up front and request them through
:meth:`ExperimentRunner.prefetch`, which deduplicates the batch and (with
``jobs > 1``) executes the outstanding simulations across a worker pool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, NamedTuple, Optional, Sequence, Tuple

from repro.core.config import IMPConfig
from repro.experiments.configs import experiment_config
from repro.experiments.sweep import (ResultCache, RunPolicy, RunSpec,
                                     SweepEngine, SweepJournal, _freeze)
from repro.sim.config import SystemConfig
from repro.sim.system import SimulationResult, run_workload
from repro.workloads import paper_workloads
from repro.workloads.base import Workload, WorkloadSpecError


@dataclass
class RunRecord:
    """One simulation result plus the knobs that produced it."""

    workload: str
    mode: str
    n_cores: int
    result: SimulationResult

    @property
    def runtime(self) -> int:
        return self.result.runtime_cycles

    @property
    def throughput(self) -> float:
        return self.result.throughput


class RunRequest(NamedTuple):
    """One simulation a figure declares it will need (see ``prefetch``)."""

    workload: str
    mode: str
    n_cores: int = 64
    imp_config: Optional[IMPConfig] = None
    sw_prefetch_distance: int = 8


def _imp_signature(imp_config: Optional[IMPConfig]) -> Tuple:
    """Canonical in-memory cache signature of an IMP configuration.

    ``None`` and ``IMPConfig()`` resolve to the same simulation (see
    :func:`repro.experiments.configs.experiment_config`), so they share a
    signature; any field difference — including nested stream-prefetcher
    knobs — produces a distinct one.
    """
    return _freeze((imp_config or IMPConfig()).to_dict())


class ExperimentRunner:
    """Runs (and caches) the paper's named configurations over workloads.

    ``jobs`` selects the sweep worker count (default: ``$REPRO_JOBS``,
    else serial).  ``cache_dir`` enables the persistent on-disk result
    cache; ``use_cache=False`` bypasses it without forgetting the path.
    """

    def __init__(self, workloads: Optional[Sequence[Workload]] = None,
                 scale: float = 1.0, seed: int = 1,
                 base_config: Optional[SystemConfig] = None,
                 jobs: Optional[int] = None, cache_dir=None,
                 use_cache: bool = True,
                 imp_config: Optional[IMPConfig] = None,
                 policy: Optional[RunPolicy] = None,
                 journal: Optional[SweepJournal] = None,
                 backend=None, shards: Sequence[str] = ()) -> None:
        self.workloads: List[Workload] = (
            list(workloads) if workloads is not None
            else paper_workloads(scale=scale, seed=seed))
        self.base_config = base_config
        #: Default IMP configuration substituted into requests that do not
        #: carry their own (``repro figure --scenario`` routes a scenario's
        #: ``imp`` overrides through this).  ``None`` keeps the stock
        #: Table 2 parameters, exactly as before.
        self.default_imp_config = imp_config
        disk_cache = (ResultCache(cache_dir)
                      if (cache_dir is not None and use_cache) else None)
        self.engine = SweepEngine(jobs=jobs, cache=disk_cache,
                                  policy=policy, journal=journal,
                                  backend=backend, shards=shards)
        self._cache: Dict[Tuple, RunRecord] = {}

    # ------------------------------------------------------------------
    def workload_names(self) -> List[str]:
        return [w.name for w in self.workloads]

    def _workload(self, name: str) -> Workload:
        for workload in self.workloads:
            if workload.name == name:
                return workload
        raise KeyError(f"workload {name!r} not registered with this runner")

    def _key(self, request: RunRequest) -> Tuple:
        return (request.workload, request.mode, request.n_cores,
                _imp_signature(request.imp_config),
                request.sw_prefetch_distance)

    def _spec(self, workload: Workload,
              request: RunRequest) -> Optional[RunSpec]:
        """Spec for a request, or ``None`` when the workload cannot be
        serialised (it then runs in-process, without the disk cache)."""
        try:
            return RunSpec.for_run(workload, request.mode, request.n_cores,
                                   imp_config=request.imp_config,
                                   base_config=self.base_config,
                                   sw_prefetch_distance=(
                                       request.sw_prefetch_distance))
        except WorkloadSpecError:
            return None

    def _run_unspecable(self, workload: Workload,
                        request: RunRequest) -> SimulationResult:
        config, prefetcher, imp_cfg, software = experiment_config(
            request.mode, request.n_cores, request.imp_config,
            self.base_config)
        self.engine.simulations_run += 1
        return run_workload(workload, config, prefetcher=prefetcher,
                            imp_config=imp_cfg, software_prefetch=software,
                            sw_prefetch_distance=request.sw_prefetch_distance)

    # ------------------------------------------------------------------
    def run(self, workload: str, mode: str, n_cores: int = 64,
            imp_config: Optional[IMPConfig] = None,
            sw_prefetch_distance: int = 8) -> RunRecord:
        """Run one (workload, mode, core count) point, with caching."""
        if imp_config is None:
            imp_config = self.default_imp_config
        request = RunRequest(workload, mode, n_cores, imp_config,
                             sw_prefetch_distance)
        key = self._key(request)
        record = self._cache.get(key)
        if record is not None:
            return record
        workload_obj = self._workload(workload)
        spec = self._spec(workload_obj, request)
        if spec is None:
            result = self._run_unspecable(workload_obj, request)
        else:
            result = self.engine.run(
                [spec], workload_lookup=lambda _: workload_obj)[spec]
        record = RunRecord(workload=workload, mode=mode, n_cores=n_cores,
                           result=result)
        self._cache[key] = record
        return record

    # ------------------------------------------------------------------
    def prefetch(self, requests: Iterable[RunRequest]) -> None:
        """Batch-execute every not-yet-cached request, in one sweep.

        Figures call this with the full list of runs they are about to
        consume; shared runs are deduplicated here (and against the
        in-memory and on-disk caches), and with ``jobs > 1`` the
        outstanding simulations execute across the worker pool.  After
        ``prefetch`` returns, the figure's ``run`` calls are all hits.
        """
        pending: Dict[Tuple, Tuple[Optional[RunSpec], Workload, RunRequest]] \
            = {}
        for item in requests:
            request = RunRequest(*item)
            if request.imp_config is None and self.default_imp_config is not None:
                request = request._replace(imp_config=self.default_imp_config)
            key = self._key(request)
            if key in self._cache or key in pending:
                continue
            workload_obj = self._workload(request.workload)
            pending[key] = (self._spec(workload_obj, request), workload_obj,
                            request)
        spec_lookup = {spec: workload for spec, workload, _
                       in pending.values() if spec is not None}
        results = self.engine.run(list(spec_lookup),
                                  workload_lookup=spec_lookup.get)
        for key, (spec, workload_obj, request) in pending.items():
            if spec is not None:
                result = results[spec]
            else:
                result = self._run_unspecable(workload_obj, request)
            self._cache[key] = RunRecord(workload=request.workload,
                                         mode=request.mode,
                                         n_cores=request.n_cores,
                                         result=result)

    def run_all(self, modes: Iterable[str], n_cores: int = 64,
                imp_config: Optional[IMPConfig] = None) -> Dict[str, Dict[str, RunRecord]]:
        """Run every registered workload under every mode.

        Returns ``{workload: {mode: record}}``.
        """
        modes = list(modes)
        self.prefetch(RunRequest(workload, mode, n_cores, imp_config)
                      for workload in self.workload_names()
                      for mode in modes)
        return {workload: {mode: self.run(workload, mode, n_cores, imp_config)
                           for mode in modes}
                for workload in self.workload_names()}

    def cached_records(self) -> List[Tuple[Tuple, RunRecord]]:
        """Every memoised run as ``(cache key, record)`` pairs, in a
        deterministic order.  The cache key is ``(workload, mode, n_cores,
        imp signature, sw prefetch distance)``; the sweep benchmark uses
        this to compare per-run fingerprints across engine configurations
        without depending on the cache's internal layout."""
        return sorted(self._cache.items(), key=lambda item: repr(item[0]))

    def clear_cache(self) -> None:
        self._cache.clear()
        for workload in self.workloads:
            clear_builds = getattr(workload, "clear_build_cache", None)
            if clear_builds is not None:
                clear_builds()
