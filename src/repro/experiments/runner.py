"""Experiment runner with result caching.

Several figures share the same underlying simulations (e.g. the *Base* run
at 64 cores appears in Figures 2, 9b and 10), so the runner memoises results
by (workload, mode, core count, IMP-config signature).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.config import IMPConfig
from repro.experiments.configs import experiment_config, scaled_config
from repro.sim.config import SystemConfig
from repro.sim.system import SimulationResult, run_workload
from repro.workloads import paper_workloads
from repro.workloads.base import Workload


@dataclass
class RunRecord:
    """One simulation result plus the knobs that produced it."""

    workload: str
    mode: str
    n_cores: int
    result: SimulationResult

    @property
    def runtime(self) -> int:
        return self.result.runtime_cycles

    @property
    def throughput(self) -> float:
        return self.result.throughput


def _imp_signature(imp_config: Optional[IMPConfig]) -> Tuple:
    if imp_config is None:
        return ()
    return (imp_config.pt_size, imp_config.ipd_size,
            imp_config.max_prefetch_distance, imp_config.partial_enabled,
            imp_config.confidence_threshold)


class ExperimentRunner:
    """Runs (and caches) the paper's named configurations over workloads."""

    def __init__(self, workloads: Optional[Sequence[Workload]] = None,
                 scale: float = 1.0, seed: int = 1,
                 base_config: Optional[SystemConfig] = None) -> None:
        self.workloads: List[Workload] = (
            list(workloads) if workloads is not None
            else paper_workloads(scale=scale, seed=seed))
        self.base_config = base_config
        self._cache: Dict[Tuple, RunRecord] = {}

    # ------------------------------------------------------------------
    def workload_names(self) -> List[str]:
        return [w.name for w in self.workloads]

    def _workload(self, name: str) -> Workload:
        for workload in self.workloads:
            if workload.name == name:
                return workload
        raise KeyError(f"workload {name!r} not registered with this runner")

    # ------------------------------------------------------------------
    def run(self, workload: str, mode: str, n_cores: int = 64,
            imp_config: Optional[IMPConfig] = None,
            sw_prefetch_distance: int = 8) -> RunRecord:
        """Run one (workload, mode, core count) point, with caching."""
        key = (workload, mode, n_cores, _imp_signature(imp_config),
               sw_prefetch_distance)
        if key in self._cache:
            return self._cache[key]
        config, prefetcher, imp_cfg, software_prefetch = experiment_config(
            mode, n_cores, imp_config, self.base_config)
        result = run_workload(self._workload(workload), config,
                              prefetcher=prefetcher, imp_config=imp_cfg,
                              software_prefetch=software_prefetch,
                              sw_prefetch_distance=sw_prefetch_distance)
        record = RunRecord(workload=workload, mode=mode, n_cores=n_cores,
                           result=result)
        self._cache[key] = record
        return record

    def run_all(self, modes: Iterable[str], n_cores: int = 64,
                imp_config: Optional[IMPConfig] = None) -> Dict[str, Dict[str, RunRecord]]:
        """Run every registered workload under every mode.

        Returns ``{workload: {mode: record}}``.
        """
        table: Dict[str, Dict[str, RunRecord]] = {}
        for workload in self.workload_names():
            table[workload] = {}
            for mode in modes:
                table[workload][mode] = self.run(workload, mode, n_cores,
                                                 imp_config)
        return table

    def clear_cache(self) -> None:
        self._cache.clear()
        for workload in self.workloads:
            clear_builds = getattr(workload, "clear_build_cache", None)
            if clear_builds is not None:
                clear_builds()
