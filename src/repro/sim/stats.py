"""Statistics collected during simulation.

The counters mirror the quantities the paper reports:

* runtime (cycles) and throughput, used by Figures 2, 9, 11, 13-16,
* L1 miss counts broken down by access kind (Figure 1),
* stall cycles broken down by access kind (Figure 2),
* prefetch coverage / accuracy / relative latency (Table 3),
* NoC and DRAM traffic in bytes (Figure 12),
* instruction counts (Figure 10).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List

from repro.sim.trace import AccessKind

#: CoreStats counters keyed by AccessKind (serialised via the kind's value).
_KIND_FIELDS = ("misses_by_kind", "accesses_by_kind", "stall_cycles_by_kind")

#: Serialised keys of the dynamic deep-hierarchy counters (``l4_hits``,
#: ``l7_misses``, ...).  Levels 1-3 stay on the scalar fields below,
#: bit-exactly as before deep chains existed.
_LEVEL_KEY = re.compile(r"^l(\d+)_(hits|misses)$")

#: Plain integer counters of CoreStats, in declaration order.
_CORE_SCALAR_FIELDS = (
    "core_id", "cycles", "instructions", "mem_accesses", "loads", "stores",
    "l1_hits", "l1_misses", "l2_hits", "l2_misses", "l3_hits", "l3_misses",
    "total_stall_cycles",
    "total_mem_latency", "prefetches_issued", "stream_prefetches_issued",
    "indirect_prefetches_issued", "prefetches_useful",
    "prefetch_covered_misses", "prefetch_late_cycles", "sw_prefetches_issued",
)

_TRAFFIC_FIELDS = ("noc_bytes", "noc_flits", "noc_messages", "dram_bytes",
                   "dram_requests", "invalidations", "broadcasts")


@dataclass(slots=True)
class CoreStats:
    """Counters for a single core and its private L1/prefetcher."""

    core_id: int = 0
    cycles: int = 0
    instructions: int = 0
    mem_accesses: int = 0
    loads: int = 0
    stores: int = 0
    l1_hits: int = 0
    l1_misses: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    # Shared-level counters for explicit >=3-level hierarchies (see
    # repro.sim.config.HierarchyConfig); zero on the classic two-level
    # shape, where the shared level accounts into l2_hits/l2_misses.
    l3_hits: int = 0
    l3_misses: int = 0
    # Hit/miss counters for hierarchy levels beyond the third (chains
    # deeper than three levels), keyed by their serialised names
    # ("l4_hits", "l4_misses", ...).  Counters for levels 1-3 stay on the
    # scalar fields above so existing fingerprints and serialised records
    # are bit-exact; this dict is empty for every <=3-level configuration.
    extra_levels: Dict[str, int] = field(default_factory=dict)
    misses_by_kind: Dict[AccessKind, int] = field(
        default_factory=lambda: {kind: 0 for kind in AccessKind})
    accesses_by_kind: Dict[AccessKind, int] = field(
        default_factory=lambda: {kind: 0 for kind in AccessKind})
    stall_cycles_by_kind: Dict[AccessKind, int] = field(
        default_factory=lambda: {kind: 0 for kind in AccessKind})
    total_stall_cycles: int = 0
    total_mem_latency: int = 0
    # Prefetching effectiveness.
    prefetches_issued: int = 0
    stream_prefetches_issued: int = 0
    indirect_prefetches_issued: int = 0
    prefetches_useful: int = 0
    prefetch_covered_misses: int = 0      # demand access found a prefetched line
    prefetch_late_cycles: int = 0         # stall on an in-flight prefetch
    sw_prefetches_issued: int = 0

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    @property
    def l1_miss_rate(self) -> float:
        return self.l1_misses / self.mem_accesses if self.mem_accesses else 0.0

    @property
    def avg_mem_latency(self) -> float:
        """Average latency of demand memory accesses, in cycles."""
        return self.total_mem_latency / self.mem_accesses if self.mem_accesses else 0.0

    @property
    def coverage(self) -> float:
        """Fraction of would-be misses captured by prefetches (Table 3)."""
        would_be_misses = self.l1_misses + self.prefetch_covered_misses
        if not would_be_misses:
            return 0.0
        return self.prefetch_covered_misses / would_be_misses

    @property
    def accuracy(self) -> float:
        """Fraction of prefetched lines that were later accessed (Table 3)."""
        if not self.prefetches_issued:
            return 0.0
        return min(1.0, self.prefetches_useful / self.prefetches_issued)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    # ------------------------------------------------------------------
    # Per-level counters (hierarchy positions are 1-based: l1, l2, ...)
    # ------------------------------------------------------------------
    def bump_level(self, position: int, hit: bool) -> None:
        """Count one hit/miss at hierarchy level ``position``.

        Positions 1-3 increment the scalar ``l1_*``/``l2_*``/``l3_*``
        fields; deeper positions accumulate under dynamic ``lN_*`` keys in
        :attr:`extra_levels`.  Hot paths for the common shapes increment
        the scalar fields directly; this is the generic entry point.
        """
        if position <= 3:
            name = (f"l{position}_hits" if hit else f"l{position}_misses")
            setattr(self, name, getattr(self, name) + 1)
            return
        key = f"l{position}_hits" if hit else f"l{position}_misses"
        extra = self.extra_levels
        extra[key] = extra.get(key, 0) + 1

    def level_hits(self, position: int) -> int:
        if position <= 3:
            return getattr(self, f"l{position}_hits")
        return self.extra_levels.get(f"l{position}_hits", 0)

    def level_misses(self, position: int) -> int:
        if position <= 3:
            return getattr(self, f"l{position}_misses")
        return self.extra_levels.get(f"l{position}_misses", 0)

    # ------------------------------------------------------------------
    # Serialisation (persistent result cache, cross-process sweeps)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        doc: Dict = {name: getattr(self, name) for name in _CORE_SCALAR_FIELDS}
        # Dynamic deep-level counters serialise as flat lN_* keys next to
        # the scalar l1/l2/l3 ones (sorted for deterministic records).
        for key in sorted(self.extra_levels):
            doc[key] = self.extra_levels[key]
        for name in _KIND_FIELDS:
            doc[name] = {kind.value: count
                         for kind, count in getattr(self, name).items()}
        return doc

    @classmethod
    def from_dict(cls, doc: Dict) -> "CoreStats":
        stats = cls(**{name: doc[name] for name in _CORE_SCALAR_FIELDS})
        known = set(_CORE_SCALAR_FIELDS)
        extra = {key: value for key, value in doc.items()
                 if key not in known and _LEVEL_KEY.match(key)}
        if extra:
            stats.extra_levels = extra
        for name in _KIND_FIELDS:
            setattr(stats, name, {AccessKind(value): count
                                  for value, count in doc[name].items()})
        return stats


@dataclass(slots=True)
class TrafficStats:
    """Interconnect and memory traffic, shared across the whole system."""

    noc_bytes: int = 0
    noc_flits: int = 0
    noc_messages: int = 0
    dram_bytes: int = 0
    dram_requests: int = 0
    invalidations: int = 0
    broadcasts: int = 0

    def to_dict(self) -> Dict:
        return {name: getattr(self, name) for name in _TRAFFIC_FIELDS}

    @classmethod
    def from_dict(cls, doc: Dict) -> "TrafficStats":
        return cls(**{name: doc[name] for name in _TRAFFIC_FIELDS})


@dataclass(slots=True)
class SystemStats:
    """Aggregated statistics of one simulation run."""

    cores: List[CoreStats] = field(default_factory=list)
    traffic: TrafficStats = field(default_factory=TrafficStats)

    # ------------------------------------------------------------------
    # Aggregation over cores
    # ------------------------------------------------------------------
    def _sum(self, attr: str) -> int:
        return sum(getattr(core, attr) for core in self.cores)

    @property
    def runtime_cycles(self) -> int:
        """Parallel runtime: the slowest core defines completion."""
        return max((core.cycles for core in self.cores), default=0)

    @property
    def total_instructions(self) -> int:
        return self._sum("instructions")

    @property
    def throughput(self) -> float:
        """Instructions per cycle across the whole chip."""
        runtime = self.runtime_cycles
        return self.total_instructions / runtime if runtime else 0.0

    @property
    def total_l1_misses(self) -> int:
        return self._sum("l1_misses")

    @property
    def total_mem_accesses(self) -> int:
        return self._sum("mem_accesses")

    @property
    def avg_mem_latency(self) -> float:
        accesses = self.total_mem_accesses
        if not accesses:
            return 0.0
        return self._sum("total_mem_latency") / accesses

    @property
    def prefetches_issued(self) -> int:
        return self._sum("prefetches_issued")

    @property
    def prefetches_useful(self) -> int:
        return self._sum("prefetches_useful")

    @property
    def prefetch_covered_misses(self) -> int:
        return self._sum("prefetch_covered_misses")

    @property
    def coverage(self) -> float:
        covered = self.prefetch_covered_misses
        would_be = self.total_l1_misses + covered
        return covered / would_be if would_be else 0.0

    @property
    def accuracy(self) -> float:
        issued = self.prefetches_issued
        return min(1.0, self.prefetches_useful / issued) if issued else 0.0

    def miss_fraction_by_kind(self) -> Dict[AccessKind, float]:
        """Per-kind share of all L1 misses (Figure 1)."""
        totals = {kind: 0 for kind in AccessKind}
        for core in self.cores:
            for kind, count in core.misses_by_kind.items():
                totals[kind] += count
        all_misses = sum(totals.values())
        if not all_misses:
            return {kind: 0.0 for kind in AccessKind}
        return {kind: count / all_misses for kind, count in totals.items()}

    def stall_fraction_by_kind(self) -> Dict[AccessKind, float]:
        """Per-kind share of memory stall cycles (Figure 2)."""
        totals = {kind: 0 for kind in AccessKind}
        for core in self.cores:
            for kind, count in core.stall_cycles_by_kind.items():
                totals[kind] += count
        all_stalls = sum(totals.values())
        if not all_stalls:
            return {kind: 0.0 for kind in AccessKind}
        return {kind: count / all_stalls for kind, count in totals.items()}

    def total_stall_cycles(self) -> int:
        return self._sum("total_stall_cycles")

    # ------------------------------------------------------------------
    # Serialisation and fidelity fingerprint
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        return {"cores": [core.to_dict() for core in self.cores],
                "traffic": self.traffic.to_dict()}

    @classmethod
    def from_dict(cls, doc: Dict) -> "SystemStats":
        return cls(cores=[CoreStats.from_dict(core) for core in doc["cores"]],
                   traffic=TrafficStats.from_dict(doc["traffic"]))

    def fingerprint(self) -> Dict[str, int]:
        """Compact simulation-fidelity fingerprint.

        Two runs of the same scenario must produce identical fingerprints
        regardless of process, worker count, or cache state; the benchmark
        harness and the on-disk result cache both compare these.
        """
        return {
            "runtime_cycles": self.runtime_cycles,
            "instructions": self.total_instructions,
            "mem_accesses": self.total_mem_accesses,
            "l1_misses": self.total_l1_misses,
            "l2_misses": self._sum("l2_misses"),
            "prefetches_issued": self.prefetches_issued,
            "prefetches_useful": self.prefetches_useful,
            "prefetch_covered_misses": self.prefetch_covered_misses,
            "noc_bytes": self.traffic.noc_bytes,
            "dram_bytes": self.traffic.dram_bytes,
        }
