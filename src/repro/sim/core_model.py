"""Core timing models: in-order single-issue (Table 1) and a modest
out-of-order core with a small reorder buffer (Section 6.3.1, Figure 13).

Both models consume a :class:`repro.sim.trace.Trace` and charge:

* one cycle per instruction,
* for the in-order core, a full stall for every cycle of memory latency
  beyond the L1 hit latency,
* for the out-of-order core, misses retire out of a small window: the core
  keeps executing younger instructions until the reorder buffer fills (or an
  outstanding-miss limit is hit), which hides part of the latency — the
  first-order behaviour of the Silvermont-class core the paper models.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional, Tuple

from repro.memory.hierarchy import MemorySystem
from repro.sim.config import SystemConfig
from repro.sim.stats import CoreStats
from repro.sim.trace import AccessKind, Compute, MemRef, SwPrefetch, Trace


class InOrderCore:
    """Single-issue in-order core: blocks on every memory access."""

    def __init__(self, core_id: int, trace: Trace, memsys: MemorySystem,
                 stats: CoreStats, config: SystemConfig) -> None:
        self.core_id = core_id
        self.trace = trace
        self.memsys = memsys
        self.stats = stats
        self.config = config
        self.time: float = 0.0
        self._position = 0

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        return self._position >= len(self.trace.entries)

    def run_until_memory_access(self) -> None:
        """Advance the core until it has performed one memory access (or the
        trace ends).  The system scheduler interleaves cores at this
        granularity so that shared-resource contention is time-ordered."""
        entries = self.trace.entries
        while self._position < len(entries):
            entry = entries[self._position]
            self._position += 1
            if isinstance(entry, Compute):
                self._execute_compute(entry)
            elif isinstance(entry, SwPrefetch):
                self._execute_sw_prefetch(entry)
            else:
                self._execute_mem_ref(entry)
                return

    def finish(self) -> None:
        """Called once the trace is exhausted; records the final cycle count."""
        self.stats.cycles = int(self.time)

    # ------------------------------------------------------------------
    def _execute_compute(self, entry: Compute) -> None:
        self.time += entry.ops
        self.stats.instructions += entry.ops

    def _execute_sw_prefetch(self, entry: SwPrefetch) -> None:
        ops = 1 + entry.overhead_ops
        self.time += ops
        self.stats.instructions += ops
        self.memsys.software_prefetch(self.core_id, entry.addr, self.time)

    def _execute_mem_ref(self, ref: MemRef) -> None:
        outcome = self.memsys.access(self.core_id, ref, self.time)
        self._record_access(ref, outcome.latency, outcome.l1_hit)
        stall = max(0.0, outcome.latency - 1.0)
        self.time += 1.0 + stall
        self._record_stall(ref.kind, stall)

    # ------------------------------------------------------------------
    def _record_access(self, ref: MemRef, latency: float, l1_hit: bool) -> None:
        stats = self.stats
        stats.instructions += 1
        stats.mem_accesses += 1
        if ref.is_write:
            stats.stores += 1
        else:
            stats.loads += 1
        stats.accesses_by_kind[ref.kind] += 1
        stats.total_mem_latency += int(latency)
        if l1_hit:
            stats.l1_hits += 1
        else:
            stats.l1_misses += 1
            stats.misses_by_kind[ref.kind] += 1

    def _record_stall(self, kind: AccessKind, stall: float) -> None:
        if stall <= 0:
            return
        self.stats.total_stall_cycles += int(stall)
        self.stats.stall_cycles_by_kind[kind] += int(stall)


class OutOfOrderCore(InOrderCore):
    """Bounded-window out-of-order core (ROB of ``config.rob_size``).

    Misses enter a pending queue; the core keeps issuing younger instructions
    until the distance to the oldest pending miss exceeds the ROB size, at
    which point time jumps to that miss's completion (it must retire before
    the window can move).  A small outstanding-miss limit models the MSHRs.
    """

    #: A Silvermont-class core has a handful of L1 miss-status registers; this
    #: bounds the memory-level parallelism the window can expose.
    MAX_OUTSTANDING_MISSES = 4

    def __init__(self, core_id: int, trace: Trace, memsys: MemorySystem,
                 stats: CoreStats, config: SystemConfig) -> None:
        super().__init__(core_id, trace, memsys, stats, config)
        self._inst_seq = 0
        self._pending: Deque[Tuple[int, float, AccessKind]] = deque()

    def _drain_window(self, required_space: int = 0) -> None:
        while self._pending:
            oldest_seq, completion, kind = self._pending[0]
            window_full = (self._inst_seq - oldest_seq) >= self.config.rob_size
            too_many = len(self._pending) >= self.MAX_OUTSTANDING_MISSES - required_space
            if not window_full and not too_many:
                break
            self._pending.popleft()
            if completion > self.time:
                stall = completion - self.time
                self._record_stall(kind, stall)
                self.time = completion

    def _execute_compute(self, entry: Compute) -> None:
        # Independent compute retires from the window as it executes; an
        # outstanding miss only forces a stall once the distance to it
        # exceeds the ROB size, and by then part of the block has already
        # overlapped with the miss latency.
        remaining = entry.ops
        while self._pending and remaining > 0:
            oldest_seq, completion, kind = self._pending[0]
            space = self.config.rob_size - (self._inst_seq - oldest_seq)
            if space > remaining:
                break
            run = max(0, space)
            self.time += run
            self.stats.instructions += run
            self._inst_seq += run
            remaining -= run
            self._pending.popleft()
            if completion > self.time:
                self._record_stall(kind, completion - self.time)
                self.time = completion
        self.time += remaining
        self.stats.instructions += remaining
        self._inst_seq += remaining

    def _execute_sw_prefetch(self, entry: SwPrefetch) -> None:
        self._inst_seq += 1 + entry.overhead_ops
        self._drain_window()
        super()._execute_sw_prefetch(entry)

    def _execute_mem_ref(self, ref: MemRef) -> None:
        self._inst_seq += 1
        self._drain_window(required_space=1)
        outcome = self.memsys.access(self.core_id, ref, self.time)
        self._record_access(ref, outcome.latency, outcome.l1_hit)
        if outcome.latency <= self.config.l1d.hit_latency:
            self.time += 1.0
            return
        completion = self.time + outcome.latency
        self._pending.append((self._inst_seq, completion, ref.kind))
        self.time += 1.0

    def finish(self) -> None:
        while self._pending:
            _, completion, kind = self._pending.popleft()
            if completion > self.time:
                self._record_stall(kind, completion - self.time)
                self.time = completion
        super().finish()


def make_core(config: SystemConfig, core_id: int, trace: Trace,
              memsys: MemorySystem, stats: CoreStats) -> InOrderCore:
    """Instantiate the core model selected by ``config.core_model``."""
    if config.core_model == "ooo":
        return OutOfOrderCore(core_id, trace, memsys, stats, config)
    return InOrderCore(core_id, trace, memsys, stats, config)
