"""Core timing models: in-order single-issue (Table 1) and a modest
out-of-order core with a small reorder buffer (Section 6.3.1, Figure 13).

Both models consume a :class:`repro.sim.trace.Trace` and charge:

* one cycle per instruction,
* for the in-order core, a full stall for every cycle of memory latency
  beyond the L1 hit latency,
* for the out-of-order core, misses retire out of a small window: the core
  keeps executing younger instructions until the reorder buffer fills (or an
  outstanding-miss limit is hit), which hides part of the latency — the
  first-order behaviour of the Silvermont-class core the paper models.

The run loop is the hottest code in the whole simulator, so it works
directly on the trace's integer columns (see :mod:`repro.sim.trace`):
entries are dispatched on their opcode, column references are hoisted into
locals, and statistics are accumulated in plain instance counters that are
flushed into :class:`repro.sim.stats.CoreStats` by :meth:`finish`.

Latency and stall cycles are accumulated as floats and rounded once at
:meth:`finish`; the original per-access ``int()`` truncation silently
dropped up to one cycle per reference from the latency/stall statistics.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

from repro.sim.config import SystemConfig
from repro.sim.stats import CoreStats
from repro.sim.trace import (
    KIND_BY_CODE,
    NUM_KINDS,
    OP_COMPUTE,
    OP_LOAD,
    OP_SW_PREFETCH,
    MemRef,
    Trace,
)


def _fast_access_of(memsys):
    """Return a ``(core_id, pc, addr, size, is_write, now) -> (latency,
    l1_hit)`` callable for ``memsys``.

    :class:`repro.memory.hierarchy.MemorySystem` provides ``access_fast``
    natively; stand-in memory systems (tests) that only implement the
    object-based ``access(core_id, ref, now)`` API are adapted on the fly.
    """
    fast = getattr(memsys, "access_fast", None)
    if fast is not None:
        return fast
    access = memsys.access

    def adapter(core_id, pc, addr, size, is_write, now):
        outcome = access(core_id, MemRef(pc=pc, addr=addr, size=size,
                                         is_write=is_write), now)
        return outcome.latency, outcome.l1_hit

    return adapter


class InOrderCore:
    """Single-issue in-order core: blocks on every memory access."""

    __slots__ = ("core_id", "trace", "memsys", "stats", "config", "time",
                 "_position", "_op", "_pc", "_addr", "_size", "_aux",
                 "_lead", "_length", "_access", "_instructions",
                 "_mem_accesses", "_loads", "_stores", "_l1_hits",
                 "_l1_misses", "_accesses_by_kind", "_misses_by_kind",
                 "_mem_latency", "_stall_cycles", "_stalls_by_kind",
                 "_l1", "_l1_index", "_l1_ready", "_l1_last_use",
                 "_l1_flags", "_l1_line_shift", "_l1_set_mask",
                 "_l1_tag_shift", "_hit_latency", "_driver",
                 "_notify_on_hit", "_prefetcher", "_pf_ctx",
                 "_issue_requests", "_pf_skip_resident")

    def __init__(self, core_id: int, trace: Trace, memsys, stats: CoreStats,
                 config: SystemConfig) -> None:
        self.core_id = core_id
        self.trace = trace
        self.memsys = memsys
        self.stats = stats
        self.config = config
        self.time: float = 0.0
        self._position = 0
        # Trace columns, bound once.  ``_length`` counts storage rows (a
        # row may encode leading compute ops plus its own instruction).
        self._op = trace.op
        self._pc = trace.pc
        self._addr = trace.addr
        self._size = trace.size
        self._aux = trace.aux
        self._lead = trace.lead
        self._length = len(trace.op)
        self._access = _fast_access_of(memsys)
        # When the L1 geometry supports inlined probing, an L1 *hit* is
        # handled entirely inside the run loop — its only possible effect
        # outside this core is the prefetch requests a hit notification may
        # produce, and those are issued under this core's scheduling turn
        # (see _drive).  Prefetchers that never observe hits (the "none"
        # baseline, the classic GHB) skip the notification entirely.
        # Misses always go through MemorySystem.access_fast.  (Must mirror
        # access_fast's hit path exactly.)
        self._l1 = None
        self._notify_on_hit = False
        self._prefetcher = None
        self._pf_ctx = None
        self._issue_requests = None
        self._pf_skip_resident = False
        notify_hits = getattr(memsys, "_notify_hits", None)
        if (notify_hits is not None
                and getattr(memsys, "_l1_inline", False)
                and not config.ideal_memory):
            l1 = memsys.l1[core_id]
            self._l1 = l1
            # Flat-column L1 state, bound once (see repro.memory.cache):
            # the per-set {tag: way} index and the metadata columns.
            self._l1_index = l1._index
            self._l1_ready = l1._ready
            self._l1_last_use = l1._last_use
            self._l1_flags = l1._flags
            self._l1_line_shift = l1._line_shift
            self._l1_set_mask = l1._set_mask
            self._l1_tag_shift = l1._tag_shift
            self._hit_latency = memsys._hit_latency
            if notify_hits[core_id]:
                self._notify_on_hit = True
                self._prefetcher = memsys.prefetchers[core_id]
                self._pf_ctx = memsys._ctx
                self._issue_requests = memsys._issue_requests
                self._pf_skip_resident = not memsys._has_on_fill[core_id]
        #: Lazily-created generator behind run_until_memory_access.
        self._driver = None
        # Statistic accumulators, flushed into ``stats`` by finish().
        self._instructions = 0
        self._mem_accesses = 0
        self._loads = 0
        self._stores = 0
        self._l1_hits = 0
        self._l1_misses = 0
        self._accesses_by_kind = [0] * NUM_KINDS
        self._misses_by_kind = [0] * NUM_KINDS
        self._mem_latency = 0.0
        self._stall_cycles = 0.0
        self._stalls_by_kind = [0.0] * NUM_KINDS

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        return self._position >= self._length

    def run_until_memory_access(self) -> bool:
        """Advance the core through one scheduling turn: up to (and
        including) its next *shared* memory operation, plus any core-local
        work around it.  The system scheduler interleaves cores at this
        granularity so that shared-resource contention is time-ordered.
        Returns True when the trace is exhausted.

        Thin wrapper over :meth:`_drive`: the run loop lives in a generator
        so its dozen-plus working locals (trace columns, clock, L1 columns)
        survive between scheduling turns instead of being rebound on every
        call — at one shared operation per turn that prologue dominated the
        loop itself.
        """
        driver = self._driver
        if driver is None:
            driver = self._driver = self._drive()
        try:
            next(driver)
            return False
        except StopIteration:
            return True

    def _drive(self):
        """Generator body of the run loop.

        Scheduling protocol (bit-identical to the one-yield-per-access
        scheduler this replaces): every *shared* operation — an access that
        misses the L1, a hit notification that produces prefetch requests,
        a software prefetch — executes under a scheduling turn granted by
        the scheduler, ordered by ``(turn_time, core_id)`` where
        ``turn_time`` is this core's clock right after its previous memory
        access.  That key is exactly the time the old scheduler re-queued
        the core with after each access, so the global order of shared
        operations is unchanged; what disappears is the scheduler
        round-trip for every core-local step in between:

        * plain L1 hits (and their prefetcher notifications — prefetcher
          state is per-core) update nothing another core can observe and
          run back-to-back without yielding,
        * when a hit notification *does* return prefetch requests, the
          requests are issued under the turn the hit would have been
          scheduled with (yield first if this turn already performed a
          shared operation),
        * software prefetches execute under an unused turn without
          consuming it (the old scheduler ran them in the turn of the
          access that follows them).

        ``self.time`` is flushed with ``turn_time`` at every yield (the
        scheduler sorts on it); statistics accumulate in instance counters
        exactly as before.
        """
        pos = self._position
        length = self._length
        op_col = self._op
        aux_col = self._aux
        lead_col = self._lead
        addr_col = self._addr
        pc_col = self._pc
        size_col = self._size
        access = self._access
        core_id = self.core_id
        time = self.time
        instructions = 0
        l1 = self._l1
        if l1 is not None:
            l1_index = self._l1_index
            l1_ready = self._l1_ready
            l1_last_use = self._l1_last_use
            l1_flags = self._l1_flags
            l1_line_shift = self._l1_line_shift
            l1_set_mask = self._l1_set_mask
            l1_tag_shift = self._l1_tag_shift
            notify_on_hit = self._notify_on_hit
            prefetcher = self._prefetcher
            pf_ctx = self._pf_ctx
            issue_requests = self._issue_requests
            pf_skip_resident = self._pf_skip_resident
        #: Scheduling key of this core's next shared operation: its clock
        #: just after the previous memory access.
        turn_time = time
        #: True once the current turn's key has gone stale — a shared
        #: operation was performed, or any access advanced the key past
        #: the time this turn was granted at.
        turn_used = False
        while pos < length:
            op = op_col[pos]
            if op == OP_COMPUTE:
                ops = aux_col[pos]
                pos += 1
                time += ops
                instructions += ops
            elif op == OP_SW_PREFETCH:
                if turn_used:
                    # A software prefetch runs under an unused turn (and
                    # does not consume it): the old scheduler executed it
                    # in the turn of the access that follows.
                    self._instructions += instructions
                    instructions = 0
                    self._position = pos
                    self.time = turn_time
                    yield
                    turn_used = False
                ops = lead_col[pos] + 1 + aux_col[pos]
                time += ops
                instructions += ops
                addr = addr_col[pos]
                pos += 1
                self.memsys.software_prefetch(core_id, addr, time)
            else:
                addr = addr_col[pos]
                way = None
                if l1 is not None:
                    way = l1_index[
                        (addr >> l1_line_shift) & l1_set_mask
                    ].get(addr >> l1_tag_shift)
                if way is not None:
                    lead = lead_col[pos]
                    if lead:
                        time += lead
                        instructions += lead
                    is_write = op != OP_LOAD
                    kind_code = aux_col[pos]
                    # L1 hit, handled entirely in the run loop (mirrors
                    # MemorySystem.access_fast's hit path).
                    l1.accesses += 1
                    l1.hits += 1
                    l1_last_use[way] = time
                    flags = l1_flags[way]
                    if is_write:
                        flags |= 1      # FLAG_DIRTY
                        self._stores += 1
                    else:
                        self._loads += 1
                    hit_latency = self._hit_latency
                    if flags & 2 and not flags & 4:  # unreferenced prefetch
                        l1_flags[way] = flags | 4
                        late = l1_ready[way] - time
                        if late > 0.0:
                            latency = hit_latency + late
                        else:
                            late = 0.0
                            latency = hit_latency
                        stats = self.stats
                        stats.prefetch_covered_misses += 1
                        stats.prefetches_useful += 1
                        stats.prefetch_late_cycles += int(late)
                    else:
                        l1_flags[way] = flags
                        late = l1_ready[way] - time
                        latency = (hit_latency + late if late > 0.0
                                   else hit_latency)
                    if notify_on_hit:
                        # _notify_prefetcher, inlined: the prefetcher
                        # observes the hit now (its state is core-local);
                        # any prefetch requests it returns are shared work
                        # and wait for this core's turn below.
                        pf_ctx.core_id = core_id
                        pf_ctx.pc = pc_col[pos]
                        pf_ctx.addr = addr
                        pf_ctx.size = size_col[pos]
                        pf_ctx.is_write = is_write
                        pf_ctx.hit = True
                        pf_ctx.now = time
                        requests = prefetcher.on_access(pf_ctx)
                        if requests:
                            # Requests whose line is already resident in
                            # this (non-sectored) L1 are no-ops in
                            # issue_prefetch; a batch of only those has no
                            # shared effect and needs no scheduling turn.
                            # No other core can change this L1's contents,
                            # so the check cannot go stale across a yield.
                            # (Disabled for prefetchers with an on_fill
                            # chaining hook, which observes every request.)
                            all_resident = False
                            if pf_skip_resident:
                                all_resident = True
                                for request in requests:
                                    target = request.addr
                                    if l1_index[
                                        (target >> l1_line_shift)
                                        & l1_set_mask
                                    ].get(target >> l1_tag_shift) is None:
                                        all_resident = False
                                        break
                            if not all_resident:
                                if turn_used:
                                    self._instructions += instructions
                                    instructions = 0
                                    self._position = pos
                                    self.time = turn_time
                                    yield
                                issue_requests(core_id, requests, time)
                                turn_used = True
                    pos += 1
                    instructions += 1
                    self._mem_accesses += 1
                    self._accesses_by_kind[kind_code] += 1
                    self._mem_latency += latency
                    self._l1_hits += 1
                    stall = latency - 1.0
                    if stall > 0.0:
                        self._stall_cycles += stall
                        self._stalls_by_kind[kind_code] += stall
                        time += 1.0 + stall
                    else:
                        time += 1.0
                    # The turn's scheduling key is stale once any access
                    # has been processed: the next shared operation must be
                    # re-granted at the advanced key.
                    turn_time = time
                    turn_used = True
                    continue
                if turn_used:
                    # Shared access, but this turn already performed a
                    # shared operation: yield so cores with earlier clocks
                    # take their turns first.  (The probe above is
                    # side-effect-free, and no other core can mutate this
                    # core's private L1, so the access is simply processed
                    # on resumption.)
                    self._instructions += instructions
                    instructions = 0
                    self._position = pos
                    self.time = turn_time
                    yield
                lead = lead_col[pos]
                if lead:
                    time += lead
                    instructions += lead
                is_write = op != OP_LOAD
                kind_code = aux_col[pos]
                # access_fast returns a 5-indexable (2-tuple from
                # adapters), possibly a reused scratch list; only latency
                # and the L1-hit flag matter here, read immediately.
                result = access(core_id, pc_col[pos], addr, size_col[pos],
                                is_write, time)
                latency = result[0]
                l1_hit = result[1]
                pos += 1
                instructions += 1
                self._mem_accesses += 1
                if is_write:
                    self._stores += 1
                else:
                    self._loads += 1
                self._accesses_by_kind[kind_code] += 1
                self._mem_latency += latency
                if l1_hit:
                    self._l1_hits += 1
                else:
                    self._l1_misses += 1
                    self._misses_by_kind[kind_code] += 1
                stall = latency - 1.0
                if stall > 0.0:
                    self._stall_cycles += stall
                    self._stalls_by_kind[kind_code] += stall
                    time += 1.0 + stall
                else:
                    time += 1.0
                turn_time = time
                turn_used = True
        self._instructions += instructions
        self._position = pos
        self.time = time

    def finish(self) -> None:
        """Called once the trace is exhausted; flushes accumulated counters
        into :class:`CoreStats` (idempotent — safe to call repeatedly)."""
        stats = self.stats
        stats.cycles = int(self.time)
        stats.instructions = self._instructions
        stats.mem_accesses = self._mem_accesses
        stats.loads = self._loads
        stats.stores = self._stores
        stats.l1_hits = self._l1_hits
        stats.l1_misses = self._l1_misses
        stats.total_mem_latency = int(round(self._mem_latency))
        stats.total_stall_cycles = int(round(self._stall_cycles))
        for code, kind in enumerate(KIND_BY_CODE):
            stats.accesses_by_kind[kind] = self._accesses_by_kind[code]
            stats.misses_by_kind[kind] = self._misses_by_kind[code]
            stats.stall_cycles_by_kind[kind] = int(round(
                self._stalls_by_kind[code]))

    # ------------------------------------------------------------------
    def _record_stall(self, kind_code: int, stall: float) -> None:
        if stall <= 0:
            return
        self._stall_cycles += stall
        self._stalls_by_kind[kind_code] += stall


class OutOfOrderCore(InOrderCore):
    """Bounded-window out-of-order core (ROB of ``config.rob_size``).

    Misses enter a pending queue; the core keeps issuing younger instructions
    until the distance to the oldest pending miss exceeds the ROB size, at
    which point time jumps to that miss's completion (it must retire before
    the window can move).  A small outstanding-miss limit models the MSHRs.
    """

    #: A Silvermont-class core has a handful of L1 miss-status registers; this
    #: bounds the memory-level parallelism the window can expose.
    MAX_OUTSTANDING_MISSES = 4

    __slots__ = ("_inst_seq", "_pending")

    def __init__(self, core_id: int, trace: Trace, memsys, stats: CoreStats,
                 config: SystemConfig) -> None:
        super().__init__(core_id, trace, memsys, stats, config)
        self._inst_seq = 0
        self._pending: Deque[Tuple[int, float, int]] = deque()

    def run_until_memory_access(self) -> bool:
        pos = self._position
        length = self._length
        op_col = self._op
        aux_col = self._aux
        lead_col = self._lead
        while pos < length:
            op = op_col[pos]
            if op == OP_COMPUTE:
                self._execute_compute(aux_col[pos])
                pos += 1
            elif op == OP_SW_PREFETCH:
                lead = lead_col[pos]
                if lead:
                    self._execute_compute(lead)
                overhead = aux_col[pos]
                addr = self._addr[pos]
                pos += 1
                self._inst_seq += 1 + overhead
                self._drain_window()
                ops = 1 + overhead
                self.time += ops
                self._instructions += ops
                self.memsys.software_prefetch(self.core_id, addr, self.time)
            else:
                lead = lead_col[pos]
                if lead:
                    self._execute_compute(lead)
                pos += 1
                self._position = pos
                self._execute_mem_ref(op, self._pc[pos - 1],
                                      self._addr[pos - 1],
                                      self._size[pos - 1], aux_col[pos - 1])
                return pos >= length
        self._position = pos
        return True

    def _drain_window(self, required_space: int = 0) -> None:
        pending = self._pending
        while pending:
            oldest_seq, completion, kind_code = pending[0]
            window_full = (self._inst_seq - oldest_seq) >= self.config.rob_size
            too_many = len(pending) >= self.MAX_OUTSTANDING_MISSES - required_space
            if not window_full and not too_many:
                break
            pending.popleft()
            if completion > self.time:
                stall = completion - self.time
                self._record_stall(kind_code, stall)
                self.time = completion

    def _execute_compute(self, ops: int) -> None:
        # Independent compute retires from the window as it executes; an
        # outstanding miss only forces a stall once the distance to it
        # exceeds the ROB size, and by then part of the block has already
        # overlapped with the miss latency.
        remaining = ops
        pending = self._pending
        while pending and remaining > 0:
            oldest_seq, completion, kind_code = pending[0]
            space = self.config.rob_size - (self._inst_seq - oldest_seq)
            if space > remaining:
                break
            run = max(0, space)
            self.time += run
            self._instructions += run
            self._inst_seq += run
            remaining -= run
            pending.popleft()
            if completion > self.time:
                self._record_stall(kind_code, completion - self.time)
                self.time = completion
        self.time += remaining
        self._instructions += remaining
        self._inst_seq += remaining

    def _execute_mem_ref(self, op: int, pc: int, addr: int, size: int,
                         kind_code: int) -> None:
        self._inst_seq += 1
        self._drain_window(required_space=1)
        is_write = op != OP_LOAD
        result = self._access(self.core_id, pc, addr, size, is_write,
                              self.time)
        latency = result[0]
        l1_hit = result[1]
        self._instructions += 1
        self._mem_accesses += 1
        if is_write:
            self._stores += 1
        else:
            self._loads += 1
        self._accesses_by_kind[kind_code] += 1
        self._mem_latency += latency
        if l1_hit:
            self._l1_hits += 1
        else:
            self._l1_misses += 1
            self._misses_by_kind[kind_code] += 1
        if latency <= self.config.l1d.hit_latency:
            self.time += 1.0
            return
        completion = self.time + latency
        self._pending.append((self._inst_seq, completion, kind_code))
        self.time += 1.0

    def finish(self) -> None:
        while self._pending:
            _, completion, kind_code = self._pending.popleft()
            if completion > self.time:
                self._record_stall(kind_code, completion - self.time)
                self.time = completion
        super().finish()


def make_core(config: SystemConfig, core_id: int, trace: Trace,
              memsys, stats: CoreStats) -> InOrderCore:
    """Instantiate the core model selected by ``config.core_model``."""
    if config.core_model == "ooo":
        return OutOfOrderCore(core_id, trace, memsys, stats, config)
    return InOrderCore(core_id, trace, memsys, stats, config)
