"""System builder and simulation driver.

This module glues everything together: it builds the memory hierarchy with a
chosen prefetcher at each L1, instantiates one core model per trace, and runs
all cores interleaved in global time order so that contention on the NoC,
the shared L2 and DRAM is resolved the way it would be on real hardware.

The main entry points are :func:`build_system` (when you already have traces
and a memory image) and :func:`run_workload` (when you have a
:class:`repro.workloads.base.Workload`).
"""

from __future__ import annotations

import gc
import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.config import IMPConfig
from repro.core.imp import IMP
from repro.mem_image import MemoryImage
from repro.memory.hierarchy import MemorySystem
from repro.prefetchers.base import PrefetcherBase
# Re-exported for backward compatibility: the factory moved next to the
# prefetcher interface so the memory hierarchy can resolve multi-attach
# prefetcher names without importing the system builder.
from repro.prefetchers.factory import PrefetcherSpec, make_prefetcher_factory
from repro.sim.config import SystemConfig
from repro.sim.core_model import InOrderCore, make_core
from repro.sim.stats import CoreStats, SystemStats
from repro.sim.trace import Trace


@dataclass
class SimulationResult:
    """Outcome of one simulation run."""

    config: SystemConfig
    stats: SystemStats
    prefetcher: str = "stream"
    workload: str = ""
    imps: List[IMP] = field(default_factory=list)

    @property
    def runtime_cycles(self) -> int:
        return self.stats.runtime_cycles

    @property
    def throughput(self) -> float:
        return self.stats.throughput

    def speedup_over(self, other: "SimulationResult") -> float:
        """Runtime speedup of this configuration relative to ``other``."""
        if self.runtime_cycles == 0:
            return 0.0
        return other.runtime_cycles / self.runtime_cycles

    def normalized_throughput(self, reference: "SimulationResult") -> float:
        """Throughput normalised to a reference run (as in Figures 9/11)."""
        if reference.throughput == 0:
            return 0.0
        return self.throughput / reference.throughput

    # ------------------------------------------------------------------
    # Serialisation (sweep workers, persistent result cache)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        """JSON-serialisable form of this result.

        Carries the full per-core statistics and the resolved system
        configuration, which is everything the figure/table generators
        consume.  Live prefetcher objects (``imps``) are introspection-only
        and deliberately not serialised; a deserialised result has an empty
        ``imps`` list.
        """
        return {"config": self.config.to_dict(), "stats": self.stats.to_dict(),
                "prefetcher": self.prefetcher, "workload": self.workload}

    @classmethod
    def from_dict(cls, doc: Dict) -> "SimulationResult":
        return cls(config=SystemConfig.from_dict(doc["config"]),
                   stats=SystemStats.from_dict(doc["stats"]),
                   prefetcher=doc["prefetcher"], workload=doc["workload"])


def _method_driver(core):
    """Adapt a method-based core (OutOfOrderCore, test stand-ins) to the
    generator-driving scheduler: one yield per scheduling turn."""
    while not core.run_until_memory_access():
        yield


class System:
    """A full chip: cores + memory hierarchy, driven by per-core traces."""

    def __init__(self, config: SystemConfig, traces: Sequence[Trace],
                 mem_image: Optional[MemoryImage] = None,
                 prefetcher: PrefetcherSpec = "stream",
                 imp_config: Optional[IMPConfig] = None) -> None:
        if len(traces) != config.n_cores:
            raise ValueError(
                f"expected {config.n_cores} traces, got {len(traces)}")
        self.config = config
        self.mem_image = mem_image or MemoryImage()
        self.stats = SystemStats(
            cores=[CoreStats(core_id=i) for i in range(config.n_cores)])
        factory = make_prefetcher_factory(prefetcher, self.mem_image, imp_config)
        # Explicit hierarchies may attach prefetchers *by name* per level
        # (hybrid stream@L1 + IMP@L2, a per-slice shared-level prefetcher);
        # hand the memory system a resolver that shares this run's memory
        # image and IMP configuration.
        named_factory = (lambda name: make_prefetcher_factory(
            name, self.mem_image, imp_config))
        self.memsys = MemorySystem(config, self.mem_image, factory, self.stats,
                                   named_prefetcher_factory=named_factory)
        self.cores = [make_core(config, i, trace, self.memsys, self.stats.cores[i])
                      for i, trace in enumerate(traces)]
        self._prefetcher_name = prefetcher if isinstance(prefetcher, str) else "custom"

    def run(self) -> SimulationResult:
        """Run every core to completion, interleaved in global time order.

        The run loop allocates millions of short-lived, acyclic objects
        (tuples, requests, cache lines); generational GC passes over them
        are pure overhead, so collection is suspended for the duration of
        the run and restored afterwards.
        """
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            return self._run()
        finally:
            if gc_was_enabled:
                gc.enable()

    def _run(self) -> SimulationResult:
        heap: List = []
        cores = self.cores
        # Drive each core through its scheduling generator (see
        # InOrderCore._drive): resuming a live frame per turn instead of
        # re-entering a method keeps the core's working locals alive.
        # Cores without a generator driver (the out-of-order model, test
        # stand-ins) are adapted on the fly.
        drivers = []
        for core in cores:
            drive = getattr(core, "_drive", None)
            if drive is not None and type(core).run_until_memory_access \
                    is InOrderCore.run_until_memory_access:
                driver = core._driver
                if driver is None:
                    driver = core._driver = drive()
            else:
                driver = _method_driver(core)
            drivers.append(driver)
        for core in cores:
            if not core.done:
                heapq.heappush(heap, (core.time, core.core_id))
        heappush = heapq.heappush
        heappop = heapq.heappop
        while heap:
            core_id = heappop(heap)[1]
            core = cores[core_id]
            driver = drivers[core_id]
            try:
                while True:
                    next(driver)
                    core_time = core.time
                    if heap:
                        head_time, head_id = heap[0]
                        if (core_time < head_time
                                or (core_time == head_time
                                    and core_id < head_id)):
                            # Still the globally earliest core: a push/pop
                            # pair would hand execution straight back to it,
                            # so skip the heap round-trip.  Exactly the seed
                            # schedule.
                            continue
                        heappush(heap, (core_time, core_id))
                        break
                    # Only this core is still active: run it to completion.
            except StopIteration:
                core.finish()
        for core in cores:
            core.finish()
        imps = [p for p in self.memsys.prefetchers if isinstance(p, IMP)]
        return SimulationResult(config=self.config, stats=self.stats,
                                prefetcher=self._prefetcher_name, imps=imps)


def build_system(config: SystemConfig, traces: Sequence[Trace],
                 mem_image: Optional[MemoryImage] = None,
                 prefetcher: PrefetcherSpec = "stream",
                 imp_config: Optional[IMPConfig] = None) -> System:
    """Construct a :class:`System` ready to :meth:`System.run`."""
    return System(config, traces, mem_image, prefetcher, imp_config)


def run_workload(workload, config: SystemConfig, *,
                 prefetcher: PrefetcherSpec = "stream",
                 imp_config: Optional[IMPConfig] = None,
                 software_prefetch: bool = False,
                 sw_prefetch_distance: int = 8) -> SimulationResult:
    """Build a workload for ``config.n_cores`` cores, simulate it, and return
    the result.

    ``workload`` is any object implementing the
    :class:`repro.workloads.base.Workload` interface.  Builds are memoised
    on the workload object (see :meth:`Workload.cached_build`), so sweeping
    the same workload over several prefetchers pays the trace-generation
    cost once.
    """
    builder = getattr(workload, "cached_build", workload.build)
    build = builder(config.n_cores,
                    software_prefetch=software_prefetch,
                    sw_prefetch_distance=sw_prefetch_distance)
    system = System(config, build.traces, build.mem_image, prefetcher, imp_config)
    result = system.run()
    result.workload = getattr(workload, "name", type(workload).__name__)
    if software_prefetch:
        result.prefetcher = f"{result.prefetcher}+sw"
    return result
