"""System builder and simulation driver.

This module glues everything together: it builds the memory hierarchy with a
chosen prefetcher at each L1, instantiates one core model per trace, and runs
all cores interleaved in global time order so that contention on the NoC,
the shared L2 and DRAM is resolved the way it would be on real hardware.

The main entry points are :func:`build_system` (when you already have traces
and a memory image) and :func:`run_workload` (when you have a
:class:`repro.workloads.base.Workload`).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.core.config import IMPConfig
from repro.core.imp import IMP
from repro.mem_image import MemoryImage
from repro.memory.hierarchy import MemorySystem
from repro.prefetchers.base import PrefetcherBase
from repro.prefetchers.ghb import GHBConfig, GHBPrefetcher
from repro.prefetchers.null import NullPrefetcher
from repro.prefetchers.stream import StreamPrefetcher, StreamPrefetcherConfig
from repro.sim.config import SystemConfig
from repro.sim.core_model import make_core
from repro.sim.stats import CoreStats, SystemStats
from repro.sim.trace import Trace

PrefetcherSpec = Union[str, Callable[[int], PrefetcherBase]]


def make_prefetcher_factory(spec: PrefetcherSpec,
                            mem_image: Optional[MemoryImage] = None,
                            imp_config: Optional[IMPConfig] = None,
                            stream_config: Optional[StreamPrefetcherConfig] = None,
                            ghb_config: Optional[GHBConfig] = None,
                            ) -> Callable[[int], PrefetcherBase]:
    """Build a per-core prefetcher factory from a name or callable.

    Recognised names: ``"none"``, ``"stream"`` (the paper's baseline),
    ``"ghb"`` and ``"imp"``.
    """
    if callable(spec):
        return spec
    name = spec.lower()
    if name == "none":
        return lambda core_id: NullPrefetcher()
    if name == "stream":
        return lambda core_id: StreamPrefetcher(stream_config or StreamPrefetcherConfig())
    if name == "ghb":
        return lambda core_id: GHBPrefetcher(ghb_config or GHBConfig())
    if name == "imp":
        config = imp_config or IMPConfig()
        return lambda core_id: IMP(config, mem_image)
    raise ValueError(f"unknown prefetcher {spec!r}")


@dataclass
class SimulationResult:
    """Outcome of one simulation run."""

    config: SystemConfig
    stats: SystemStats
    prefetcher: str = "stream"
    workload: str = ""
    imps: List[IMP] = field(default_factory=list)

    @property
    def runtime_cycles(self) -> int:
        return self.stats.runtime_cycles

    @property
    def throughput(self) -> float:
        return self.stats.throughput

    def speedup_over(self, other: "SimulationResult") -> float:
        """Runtime speedup of this configuration relative to ``other``."""
        if self.runtime_cycles == 0:
            return 0.0
        return other.runtime_cycles / self.runtime_cycles

    def normalized_throughput(self, reference: "SimulationResult") -> float:
        """Throughput normalised to a reference run (as in Figures 9/11)."""
        if reference.throughput == 0:
            return 0.0
        return self.throughput / reference.throughput


class System:
    """A full chip: cores + memory hierarchy, driven by per-core traces."""

    def __init__(self, config: SystemConfig, traces: Sequence[Trace],
                 mem_image: Optional[MemoryImage] = None,
                 prefetcher: PrefetcherSpec = "stream",
                 imp_config: Optional[IMPConfig] = None) -> None:
        if len(traces) != config.n_cores:
            raise ValueError(
                f"expected {config.n_cores} traces, got {len(traces)}")
        self.config = config
        self.mem_image = mem_image or MemoryImage()
        self.stats = SystemStats(
            cores=[CoreStats(core_id=i) for i in range(config.n_cores)])
        factory = make_prefetcher_factory(prefetcher, self.mem_image, imp_config)
        self.memsys = MemorySystem(config, self.mem_image, factory, self.stats)
        self.cores = [make_core(config, i, trace, self.memsys, self.stats.cores[i])
                      for i, trace in enumerate(traces)]
        self._prefetcher_name = prefetcher if isinstance(prefetcher, str) else "custom"

    def run(self) -> SimulationResult:
        """Run every core to completion, interleaved in global time order."""
        heap: List = []
        for core in self.cores:
            if not core.done:
                heapq.heappush(heap, (core.time, core.core_id))
        while heap:
            _, core_id = heapq.heappop(heap)
            core = self.cores[core_id]
            core.run_until_memory_access()
            if core.done:
                core.finish()
            else:
                heapq.heappush(heap, (core.time, core.core_id))
        for core in self.cores:
            core.finish()
        imps = [p for p in self.memsys.prefetchers if isinstance(p, IMP)]
        return SimulationResult(config=self.config, stats=self.stats,
                                prefetcher=self._prefetcher_name, imps=imps)


def build_system(config: SystemConfig, traces: Sequence[Trace],
                 mem_image: Optional[MemoryImage] = None,
                 prefetcher: PrefetcherSpec = "stream",
                 imp_config: Optional[IMPConfig] = None) -> System:
    """Construct a :class:`System` ready to :meth:`System.run`."""
    return System(config, traces, mem_image, prefetcher, imp_config)


def run_workload(workload, config: SystemConfig, *,
                 prefetcher: PrefetcherSpec = "stream",
                 imp_config: Optional[IMPConfig] = None,
                 software_prefetch: bool = False,
                 sw_prefetch_distance: int = 8) -> SimulationResult:
    """Build a workload for ``config.n_cores`` cores, simulate it, and return
    the result.

    ``workload`` is any object implementing the
    :class:`repro.workloads.base.Workload` interface.
    """
    build = workload.build(config.n_cores,
                           software_prefetch=software_prefetch,
                           sw_prefetch_distance=sw_prefetch_distance)
    system = System(config, build.traces, build.mem_image, prefetcher, imp_config)
    result = system.run()
    result.workload = getattr(workload, "name", type(workload).__name__)
    if software_prefetch:
        result.prefetcher = f"{result.prefetcher}+sw"
    return result
