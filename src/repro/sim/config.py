"""System configuration (Table 1 of the paper).

The defaults mirror the paper's baseline platform:

* 1 GHz in-order, single-issue cores (16 / 64 / 256 of them),
* 32 KB 4-way L1 data caches with 64-byte lines,
* a shared, physically distributed L2 of ``2 / sqrt(N)`` MB per tile, 8-way,
* ACKwise_4 directory coherence,
* a 2-D mesh NoC with XY routing, 2-cycle hops, 64-bit flits,
* memory controllers in a diamond placement, 100 ns DRAM latency and
  10 GB/s per controller, with aggregate DRAM bandwidth and L2 capacity
  scaling with ``sqrt(N)`` (the paper's scalability assumption).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import List, Tuple


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of a single cache (one L1, or one L2 slice)."""

    size_bytes: int
    associativity: int
    line_size: int = 64
    sector_size: int = 0  # 0 = not sectored
    hit_latency: int = 1

    def __post_init__(self) -> None:
        if self.size_bytes % (self.associativity * self.line_size) != 0:
            raise ValueError(
                "cache size must be a multiple of associativity * line size")
        if self.sector_size and self.line_size % self.sector_size != 0:
            raise ValueError("line size must be a multiple of the sector size")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.associativity * self.line_size)

    @property
    def sectors_per_line(self) -> int:
        return self.line_size // self.sector_size if self.sector_size else 1


@dataclass(frozen=True)
class NoCConfig:
    """2-D mesh network-on-chip parameters."""

    hop_latency: int = 2          # 1 router + 1 link cycle per hop
    flit_bytes: int = 8           # 64-bit flits
    header_flits: int = 1         # request/response header
    link_bandwidth_flits: float = 1.0  # flits per cycle per link


@dataclass(frozen=True)
class DramConfig:
    """DRAM model parameters (simple model and DDR3-style banked model)."""

    model: str = "simple"               # "simple" or "banked"
    latency_cycles: int = 100           # 100 ns at 1 GHz
    bandwidth_bytes_per_cycle: float = 10.0   # 10 GB/s per MC at 1 GHz
    access_granularity: int = 32        # minimum DRAM burst (Section 4.1)
    # DDR3-10-10-10-24 style timing for the banked model.
    banks_per_rank: int = 8
    t_rcd: int = 10
    t_rp: int = 10
    t_cas: int = 10
    t_ras: int = 24
    row_size: int = 2048


@dataclass(frozen=True)
class SystemConfig:
    """Full platform configuration (Table 1)."""

    n_cores: int = 64
    frequency_ghz: float = 1.0
    core_model: str = "in-order"        # "in-order" or "ooo"
    rob_size: int = 32                  # used only by the OoO model
    l1d: CacheConfig = field(default_factory=lambda: CacheConfig(32 * 1024, 4))
    l2_assoc: int = 8
    l2_total_mb_at_1core: float = 2.0   # per-tile L2 = 2/sqrt(N) MB
    noc: NoCConfig = field(default_factory=NoCConfig)
    dram: DramConfig = field(default_factory=DramConfig)
    ackwise_pointers: int = 4
    # Partial cacheline accessing (Section 4): sector sizes used when enabled.
    l1_sector_size: int = 8
    l2_sector_size: int = 32
    partial_noc: bool = False
    partial_dram: bool = False
    # Idealisation knobs for the baselines of Section 5.4.
    ideal_memory: bool = False          # "Ideal": every access hits L1
    perfect_prefetch: bool = False      # "PerfPref": magic prefetcher, finite BW
    perfect_prefetch_lead: int = 2000   # cycles of lead time for PerfPref

    def __post_init__(self) -> None:
        mesh = int(round(math.sqrt(self.n_cores)))
        if mesh * mesh != self.n_cores:
            raise ValueError("n_cores must be a perfect square for a 2-D mesh")
        if self.core_model not in ("in-order", "ooo"):
            raise ValueError("core_model must be 'in-order' or 'ooo'")

    # ------------------------------------------------------------------
    # Derived geometry
    # ------------------------------------------------------------------
    @property
    def mesh_dim(self) -> int:
        """Side length of the square mesh."""
        return int(round(math.sqrt(self.n_cores)))

    @property
    def l2_slice_bytes(self) -> int:
        """Per-tile L2 slice capacity: ``2 / sqrt(N)`` MB, Table 1."""
        per_tile_mb = self.l2_total_mb_at_1core / math.sqrt(self.n_cores)
        raw = int(per_tile_mb * 1024 * 1024)
        # Round down to a legal cache geometry.
        granule = self.l2_assoc * self.l1d.line_size
        return max(granule, (raw // granule) * granule)

    @property
    def l2_slice(self) -> CacheConfig:
        """CacheConfig of one L2 slice."""
        sector = self.l2_sector_size if (self.partial_noc or self.partial_dram) else 0
        return CacheConfig(size_bytes=self.l2_slice_bytes,
                           associativity=self.l2_assoc,
                           line_size=self.l1d.line_size,
                           sector_size=sector,
                           hit_latency=8)

    @property
    def l1d_effective(self) -> CacheConfig:
        """L1D config, sectored when partial accessing is enabled."""
        sector = self.l1_sector_size if (self.partial_noc or self.partial_dram) else 0
        return replace(self.l1d, sector_size=sector)

    @property
    def num_memory_controllers(self) -> int:
        """Number of MCs; aggregate bandwidth scales with ``sqrt(N)``."""
        return max(1, self.mesh_dim // 2)

    def memory_controller_tiles(self) -> List[int]:
        """Tiles hosting memory controllers, in a diamond placement.

        Following Abts et al. (diamond placement for meshes with XY routing),
        controllers are spread over distinct rows and columns around the
        centre of the mesh so traffic is distributed uniformly.
        """
        dim = self.mesh_dim
        count = self.num_memory_controllers
        tiles: List[int] = []
        # Walk the diamond |x - cx| + |y - cy| = r outwards from the centre
        # until enough distinct tiles have been collected.
        cx = cy = (dim - 1) / 2.0
        candidates: List[Tuple[float, int]] = []
        for y in range(dim):
            for x in range(dim):
                dist = abs(x - cx) + abs(y - cy)
                candidates.append((dist, y * dim + x))
        candidates.sort()
        seen_rows: set = set()
        seen_cols: set = set()
        for _, tile in candidates:
            row, col = divmod(tile, dim)
            if row in seen_rows or col in seen_cols:
                continue
            tiles.append(tile)
            seen_rows.add(row)
            seen_cols.add(col)
            if len(tiles) == count:
                break
        # Fall back to closest-to-centre tiles when the diamond constraint
        # cannot yield enough tiles (tiny meshes).
        for _, tile in candidates:
            if len(tiles) == count:
                break
            if tile not in tiles:
                tiles.append(tile)
        return sorted(tiles)

    # ------------------------------------------------------------------
    # Convenience constructors for the paper's named configurations
    # ------------------------------------------------------------------
    def with_cores(self, n_cores: int) -> "SystemConfig":
        """Return a copy of this config with a different core count."""
        return replace(self, n_cores=n_cores)

    def as_ideal(self) -> "SystemConfig":
        """The paper's *Ideal* configuration: every access hits in the L1."""
        return replace(self, ideal_memory=True, perfect_prefetch=False)

    def as_perfect_prefetch(self) -> "SystemConfig":
        """The *Perfect Prefetching* configuration: magic prefetcher."""
        return replace(self, ideal_memory=False, perfect_prefetch=True)

    def with_partial(self, noc: bool = True, dram: bool = False) -> "SystemConfig":
        """Enable partial cacheline accessing in the NoC and/or DRAM."""
        return replace(self, partial_noc=noc, partial_dram=dram)

    def with_ooo(self, rob_size: int = 32) -> "SystemConfig":
        """Use the out-of-order core model (Figure 13)."""
        return replace(self, core_model="ooo", rob_size=rob_size)

    # ------------------------------------------------------------------
    # Serialisation (sweep specs, persistent result cache)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        from dataclasses import asdict
        return asdict(self)

    @classmethod
    def from_dict(cls, doc: dict) -> "SystemConfig":
        doc = dict(doc)
        doc["l1d"] = CacheConfig(**doc["l1d"])
        doc["noc"] = NoCConfig(**doc["noc"])
        doc["dram"] = DramConfig(**doc["dram"])
        return cls(**doc)
