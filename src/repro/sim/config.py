"""System configuration (Table 1 of the paper).

The defaults mirror the paper's baseline platform:

* 1 GHz in-order, single-issue cores (16 / 64 / 256 of them),
* 32 KB 4-way L1 data caches with 64-byte lines,
* a shared, physically distributed L2 of ``2 / sqrt(N)`` MB per tile, 8-way,
* ACKwise_4 directory coherence,
* a 2-D mesh NoC with XY routing, 2-cycle hops, 64-bit flits,
* memory controllers in a diamond placement, 100 ns DRAM latency and
  10 GB/s per controller, with aggregate DRAM bandwidth and L2 capacity
  scaling with ``sqrt(N)`` (the paper's scalability assumption).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of a single cache (one L1, or one L2 slice)."""

    size_bytes: int
    associativity: int
    line_size: int = 64
    sector_size: int = 0  # 0 = not sectored
    hit_latency: int = 1

    def __post_init__(self) -> None:
        if self.size_bytes % (self.associativity * self.line_size) != 0:
            raise ValueError(
                "cache size must be a multiple of associativity * line size")
        if self.sector_size and self.line_size % self.sector_size != 0:
            raise ValueError("line size must be a multiple of the sector size")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.associativity * self.line_size)

    @property
    def sectors_per_line(self) -> int:
        return self.line_size // self.sector_size if self.sector_size else 1


@dataclass(frozen=True)
class NoCConfig:
    """2-D mesh network-on-chip parameters.

    ``kernel`` names the link-reservation backend
    (:data:`repro.registry.NOC_KERNELS`): ``"compiled"`` (the default —
    the whole-route kernel compiled to C, falling back to ``"fused"``
    with a warning on hosts without the optional extension build),
    ``"fused"`` (the pure-Python whole-route kernel) or ``"reference"``
    (the per-link ``ResourceSchedule`` walk the equivalence suite holds
    both to).  All backends are bit-identical in placements and
    statistics; the ``$REPRO_NOC_KERNEL`` environment variable overrides
    the choice at mesh-construction time without changing the
    configuration (or any sweep-cache digest derived from it).
    """

    hop_latency: int = 2          # 1 router + 1 link cycle per hop
    flit_bytes: int = 8           # 64-bit flits
    header_flits: int = 1         # request/response header
    link_bandwidth_flits: float = 1.0  # flits per cycle per link
    kernel: str = "compiled"      # NOC_KERNELS backend name

    def __post_init__(self) -> None:
        # Validate the kernel name against the registry here, at
        # configuration time, so a typo fails with the full list of valid
        # backends instead of erroring deep inside system construction.
        from repro.registry import NOC_KERNELS
        NOC_KERNELS.get(self.kernel)
        if self.flit_bytes < 1:
            raise ValueError("flit_bytes must be at least 1")


@dataclass(frozen=True)
class LevelConfig:
    """One level of a configurable cache hierarchy.

    ``scope`` is ``"private"`` (one cache per core, at the core's tile) or
    ``"shared"`` (one slice per tile of a single distributed cache, homed by
    line interleaving).  For shared levels ``size_bytes`` is the capacity of
    **one slice**, mirroring how the Table 1 L2 is specified per tile.
    """

    name: str
    size_bytes: int
    associativity: int
    scope: str = "private"
    line_size: int = 64
    hit_latency: int = 1
    sector_size: int = 0  # 0 = not sectored (partial knobs may sector L1/shared)

    def __post_init__(self) -> None:
        if self.scope not in ("private", "shared"):
            raise ValueError(
                f"level {self.name!r}: scope must be 'private' or 'shared', "
                f"got {self.scope!r}")
        # Delegate geometry validation to CacheConfig.
        self.cache_config()

    def cache_config(self, sector_size: Optional[int] = None) -> CacheConfig:
        """The :class:`CacheConfig` for one cache (or slice) of this level."""
        return CacheConfig(size_bytes=self.size_bytes,
                           associativity=self.associativity,
                           line_size=self.line_size,
                           sector_size=(self.sector_size if sector_size is None
                                        else sector_size),
                           hit_latency=self.hit_latency)

    def to_dict(self) -> dict:
        from dataclasses import asdict
        return asdict(self)


@dataclass(frozen=True)
class PrefetcherAttach:
    """One prefetcher attachment point in a :class:`HierarchyConfig`.

    ``level`` names the hierarchy level the prefetcher observes and fills.
    ``prefetcher`` is a :data:`repro.registry.PREFETCHERS` name
    (``"stream"``, ``"imp"``, ...); ``None`` means "the experiment mode's
    prefetcher" — the classic behaviour, where the mode (``imp``,
    ``base``, ...) decides what runs at the attachment point.

    Private-level attachments are per-core: the prefetcher sees every
    demand access that reaches that level (all of them at the L1; the miss
    stream of the levels above elsewhere).  A shared-level attachment is
    per-slice: each slice of the distributed last level carries its own
    prefetcher instance observing the demand fetches arriving at that
    slice (slice-local hits and misses), and its prefetches fill the slice
    from DRAM.
    """

    level: str
    prefetcher: Optional[str] = None

    def __post_init__(self) -> None:
        # Validate the prefetcher name against the registry here, at
        # configuration time, so a typo fails with the full list of valid
        # prefetchers instead of erroring deep inside system construction.
        if self.prefetcher is not None:
            from repro.registry import PREFETCHERS
            PREFETCHERS.get(self.prefetcher)

    def to_dict(self) -> dict:
        return {"level": self.level, "prefetcher": self.prefetcher}


def _coerce_attach(entry) -> PrefetcherAttach:
    if isinstance(entry, PrefetcherAttach):
        return entry
    if isinstance(entry, str):
        return PrefetcherAttach(level=entry)
    if isinstance(entry, dict):
        unknown = sorted(set(entry) - {"level", "prefetcher"})
        if unknown:
            raise ValueError(
                f"unknown attach key(s) {', '.join(map(repr, unknown))}; "
                f"valid keys: level, prefetcher")
        if "level" not in entry:
            raise ValueError("an attach entry must name a 'level'")
        return PrefetcherAttach(**entry)
    raise ValueError(f"bad attach entry {entry!r}: expected a level name, "
                     f"a {{level, prefetcher}} mapping, or a "
                     f"PrefetcherAttach")


@dataclass(frozen=True)
class HierarchyConfig:
    """Shape of the cache hierarchy: an ordered chain of levels.

    The chain runs inside-out: ``levels[0]`` is what cores issue accesses
    to, the **last** level is the single shared, distributed level that
    fronts DRAM and owns the directory (the coherence point), and any
    levels in between are private per-core caches.  The classic paper
    platform is the two-level chain ``(l1 private, l2 shared)``; a
    ``(l1 private, l2 private, l3 shared)`` chain gives each core a private
    L2 under a shared L3.  Chains may be arbitrarily deep; levels beyond
    the third account into dynamic ``lN_*`` counters on
    :class:`repro.sim.stats.CoreStats`.

    ``attach`` lists the prefetcher attachment points
    (:class:`PrefetcherAttach`): a level can carry zero or more
    prefetchers (e.g. a stream prefetcher at the L1 *and* IMP at the
    private L2), and the shared last level may carry per-slice
    prefetchers.  ``prefetch_level`` is accepted as legacy input sugar for
    the single-attach form (``attach=[{"level": prefetch_level}]``) and is
    normalised away: after construction ``attach`` is the single source of
    truth and ``prefetch_level`` is always ``None``, so the two spellings
    compare (and digest) equal.
    """

    levels: Tuple[LevelConfig, ...]
    attach: Optional[Tuple[PrefetcherAttach, ...]] = None
    prefetch_level: Optional[str] = None

    def __post_init__(self) -> None:
        # Tolerate lists/dicts from JSON-shaped constructors.
        levels = tuple(LevelConfig(**lvl) if isinstance(lvl, dict) else lvl
                       for lvl in self.levels)
        object.__setattr__(self, "levels", levels)
        if len(levels) < 2:
            raise ValueError("a hierarchy needs at least two levels "
                             "(innermost private + shared last level)")
        names = [lvl.name for lvl in levels]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate level names in hierarchy: {names}")
        for lvl in levels[:-1]:
            if lvl.scope != "private":
                raise ValueError(
                    f"level {lvl.name!r}: only the last hierarchy level may "
                    f"be shared (it is the coherence point before DRAM)")
        if levels[-1].scope != "shared":
            raise ValueError(
                f"last hierarchy level {levels[-1].name!r} must be shared "
                f"(it fronts DRAM and owns the directory)")
        line_sizes = {lvl.line_size for lvl in levels}
        if len(line_sizes) != 1:
            raise ValueError(
                f"all hierarchy levels must share one line size, "
                f"got {sorted(line_sizes)}")
        # ----- prefetcher attachment ----------------------------------
        if self.attach is not None and self.prefetch_level is not None:
            raise ValueError(
                "give either 'attach' (the per-level attachment list) or "
                "the legacy 'prefetch_level', not both")
        if self.attach is None:
            level = self.prefetch_level if self.prefetch_level is not None \
                else names[0]
            if level not in names[:-1]:
                raise ValueError(
                    f"prefetch_level {level!r} must name a "
                    f"private level; private levels: {names[:-1]}")
            attach = (PrefetcherAttach(level=level),)
        else:
            attach = tuple(_coerce_attach(entry) for entry in self.attach)
            seen = set()
            for entry in attach:
                if entry.level not in names:
                    raise ValueError(
                        f"attach level {entry.level!r} is not a hierarchy "
                        f"level; valid levels: {names}")
                key = (entry.level, entry.prefetcher)
                if key in seen:
                    raise ValueError(
                        f"duplicate prefetcher attachment "
                        f"(level={entry.level!r}, "
                        f"prefetcher={entry.prefetcher!r}); each "
                        f"(level, prefetcher) pair may appear once")
                seen.add(key)
        object.__setattr__(self, "attach", attach)
        object.__setattr__(self, "prefetch_level", None)

    # ------------------------------------------------------------------
    @property
    def private_levels(self) -> Tuple[LevelConfig, ...]:
        return self.levels[:-1]

    @property
    def shared_level(self) -> LevelConfig:
        return self.levels[-1]

    def level_index(self, name: str) -> int:
        for index, lvl in enumerate(self.levels):
            if lvl.name == name:
                return index
        raise ValueError(f"unknown hierarchy level {name!r}; "
                         f"valid levels: {self.level_names()}")

    @property
    def private_attaches(self) -> Tuple[PrefetcherAttach, ...]:
        """Attachments at private levels, inner levels first (attachments
        at one level keep their ``attach``-list order)."""
        shared = self.levels[-1].name
        return tuple(sorted((a for a in self.attach if a.level != shared),
                            key=lambda a: self.level_index(a.level)))

    @property
    def shared_attaches(self) -> Tuple[PrefetcherAttach, ...]:
        """Attachments at the shared last level (per-slice prefetchers)."""
        shared = self.levels[-1].name
        return tuple(a for a in self.attach if a.level == shared)

    def level_names(self) -> List[str]:
        return [lvl.name for lvl in self.levels]

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {"levels": [lvl.to_dict() for lvl in self.levels],
                "attach": [entry.to_dict() for entry in self.attach],
                "prefetch_level": None}

    @classmethod
    def from_dict(cls, doc: dict) -> "HierarchyConfig":
        attach = doc.get("attach")
        return cls(levels=tuple(LevelConfig(**lvl) for lvl in doc["levels"]),
                   attach=tuple(attach) if attach is not None else None,
                   prefetch_level=doc.get("prefetch_level"))


@dataclass(frozen=True)
class DramConfig:
    """DRAM model parameters (simple model and DDR3-style banked model)."""

    model: str = "simple"               # "simple" or "banked"
    latency_cycles: int = 100           # 100 ns at 1 GHz
    bandwidth_bytes_per_cycle: float = 10.0   # 10 GB/s per MC at 1 GHz
    access_granularity: int = 32        # minimum DRAM burst (Section 4.1)
    # DDR3-10-10-10-24 style timing for the banked model.
    banks_per_rank: int = 8
    t_rcd: int = 10
    t_rp: int = 10
    t_cas: int = 10
    t_ras: int = 24
    row_size: int = 2048

    def __post_init__(self) -> None:
        # Validate the model name against the registry here, at
        # configuration time, so a typo fails with the full list of valid
        # models instead of erroring deep inside system construction.
        from repro.registry import DRAM_MODELS
        DRAM_MODELS.get(self.model)


@dataclass(frozen=True)
class SystemConfig:
    """Full platform configuration (Table 1)."""

    n_cores: int = 64
    frequency_ghz: float = 1.0
    core_model: str = "in-order"        # "in-order" or "ooo"
    rob_size: int = 32                  # used only by the OoO model
    l1d: CacheConfig = field(default_factory=lambda: CacheConfig(32 * 1024, 4))
    l2_assoc: int = 8
    l2_total_mb_at_1core: float = 2.0   # per-tile L2 = 2/sqrt(N) MB
    noc: NoCConfig = field(default_factory=NoCConfig)
    dram: DramConfig = field(default_factory=DramConfig)
    ackwise_pointers: int = 4
    # Partial cacheline accessing (Section 4): sector sizes used when enabled.
    l1_sector_size: int = 8
    l2_sector_size: int = 32
    partial_noc: bool = False
    partial_dram: bool = False
    # Idealisation knobs for the baselines of Section 5.4.
    ideal_memory: bool = False          # "Ideal": every access hits L1
    perfect_prefetch: bool = False      # "PerfPref": magic prefetcher, finite BW
    perfect_prefetch_lead: int = 2000   # cycles of lead time for PerfPref
    # Optional explicit hierarchy shape.  ``None`` (the default) means the
    # classic Table 1 chain derived from ``l1d`` / ``l2_*`` above: private
    # L1s under one shared, distributed L2.  Setting a HierarchyConfig
    # overrides that shape entirely (extra private levels, an L3, a
    # different prefetcher attachment point); see
    # :meth:`resolved_hierarchy`.
    hierarchy: Optional[HierarchyConfig] = None

    def __post_init__(self) -> None:
        mesh = int(round(math.sqrt(self.n_cores)))
        if mesh * mesh != self.n_cores:
            raise ValueError("n_cores must be a perfect square for a 2-D mesh")
        if self.core_model not in ("in-order", "ooo"):
            raise ValueError("core_model must be 'in-order' or 'ooo'")
        if isinstance(self.hierarchy, dict):
            object.__setattr__(self, "hierarchy",
                               HierarchyConfig.from_dict(self.hierarchy))

    # ------------------------------------------------------------------
    # Derived geometry
    # ------------------------------------------------------------------
    @property
    def mesh_dim(self) -> int:
        """Side length of the square mesh."""
        return int(round(math.sqrt(self.n_cores)))

    @property
    def l2_slice_bytes(self) -> int:
        """Per-tile L2 slice capacity: ``2 / sqrt(N)`` MB, Table 1."""
        per_tile_mb = self.l2_total_mb_at_1core / math.sqrt(self.n_cores)
        raw = int(per_tile_mb * 1024 * 1024)
        # Round down to a legal cache geometry.
        granule = self.l2_assoc * self.l1d.line_size
        return max(granule, (raw // granule) * granule)

    @property
    def l2_slice(self) -> CacheConfig:
        """CacheConfig of one L2 slice."""
        sector = self.l2_sector_size if (self.partial_noc or self.partial_dram) else 0
        return CacheConfig(size_bytes=self.l2_slice_bytes,
                           associativity=self.l2_assoc,
                           line_size=self.l1d.line_size,
                           sector_size=sector,
                           hit_latency=8)

    @property
    def l1d_effective(self) -> CacheConfig:
        """L1D config, sectored when partial accessing is enabled."""
        sector = self.l1_sector_size if (self.partial_noc or self.partial_dram) else 0
        return replace(self.l1d, sector_size=sector)

    @property
    def num_memory_controllers(self) -> int:
        """Number of MCs; aggregate bandwidth scales with ``sqrt(N)``."""
        return max(1, self.mesh_dim // 2)

    def memory_controller_tiles(self) -> List[int]:
        """Tiles hosting memory controllers, in a diamond placement.

        Following Abts et al. (diamond placement for meshes with XY routing),
        controllers are spread over distinct rows and columns around the
        centre of the mesh so traffic is distributed uniformly.
        """
        dim = self.mesh_dim
        count = self.num_memory_controllers
        tiles: List[int] = []
        # Walk the diamond |x - cx| + |y - cy| = r outwards from the centre
        # until enough distinct tiles have been collected.
        cx = cy = (dim - 1) / 2.0
        candidates: List[Tuple[float, int]] = []
        for y in range(dim):
            for x in range(dim):
                dist = abs(x - cx) + abs(y - cy)
                candidates.append((dist, y * dim + x))
        candidates.sort()
        seen_rows: set = set()
        seen_cols: set = set()
        for _, tile in candidates:
            row, col = divmod(tile, dim)
            if row in seen_rows or col in seen_cols:
                continue
            tiles.append(tile)
            seen_rows.add(row)
            seen_cols.add(col)
            if len(tiles) == count:
                break
        # Fall back to closest-to-centre tiles when the diamond constraint
        # cannot yield enough tiles (tiny meshes).
        for _, tile in candidates:
            if len(tiles) == count:
                break
            if tile not in tiles:
                tiles.append(tile)
        return sorted(tiles)

    # ------------------------------------------------------------------
    # Convenience constructors for the paper's named configurations
    # ------------------------------------------------------------------
    def with_cores(self, n_cores: int) -> "SystemConfig":
        """Return a copy of this config with a different core count."""
        return replace(self, n_cores=n_cores)

    def as_ideal(self) -> "SystemConfig":
        """The paper's *Ideal* configuration: every access hits in the L1."""
        return replace(self, ideal_memory=True, perfect_prefetch=False)

    def as_perfect_prefetch(self) -> "SystemConfig":
        """The *Perfect Prefetching* configuration: magic prefetcher."""
        return replace(self, ideal_memory=False, perfect_prefetch=True)

    def with_partial(self, noc: bool = True, dram: bool = False) -> "SystemConfig":
        """Enable partial cacheline accessing in the NoC and/or DRAM."""
        return replace(self, partial_noc=noc, partial_dram=dram)

    def with_ooo(self, rob_size: int = 32) -> "SystemConfig":
        """Use the out-of-order core model (Figure 13)."""
        return replace(self, core_model="ooo", rob_size=rob_size)

    def with_hierarchy(self, hierarchy: Optional[HierarchyConfig]) -> "SystemConfig":
        """Return a copy with an explicit hierarchy shape (``None`` restores
        the classic two-level chain)."""
        return replace(self, hierarchy=hierarchy)

    def resolved_hierarchy(self) -> HierarchyConfig:
        """The effective hierarchy shape.

        Returns :attr:`hierarchy` when set; otherwise the classic Table 1
        chain — private L1s (``l1d``) under the shared, distributed L2
        (``l2_slice``) — expressed as a :class:`HierarchyConfig`, so
        introspection code can treat every configuration uniformly.
        """
        if self.hierarchy is not None:
            return self.hierarchy
        l1 = self.l1d
        l2 = self.l2_slice
        return HierarchyConfig(levels=(
            LevelConfig(name="l1", size_bytes=l1.size_bytes,
                        associativity=l1.associativity,
                        scope="private", line_size=l1.line_size,
                        hit_latency=l1.hit_latency,
                        sector_size=l1.sector_size),
            LevelConfig(name="l2", size_bytes=l2.size_bytes,
                        associativity=l2.associativity,
                        scope="shared", line_size=l2.line_size,
                        hit_latency=l2.hit_latency,
                        sector_size=l2.sector_size),
        ))

    # ------------------------------------------------------------------
    # Serialisation (sweep specs, persistent result cache)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        from dataclasses import asdict
        return asdict(self)

    @classmethod
    def from_dict(cls, doc: dict) -> "SystemConfig":
        doc = dict(doc)
        doc["l1d"] = CacheConfig(**doc["l1d"])
        doc["noc"] = NoCConfig(**doc["noc"])
        doc["dram"] = DramConfig(**doc["dram"])
        hierarchy = doc.get("hierarchy")
        doc["hierarchy"] = (HierarchyConfig.from_dict(hierarchy)
                            if hierarchy else None)
        return cls(**doc)
