"""Reservation-based scheduling of shared resources (NoC links, DRAM).

Requests in the simulator are not generated in strictly increasing time
order: one demand miss walks its whole path (request, directory, DRAM,
response) before another core — whose clock may still be earlier — issues
its own messages.  A single ``busy_until`` scalar per resource would make
those earlier messages queue behind reservations that lie far in the future
even though the resource is idle in between, grossly over-estimating
contention.

:class:`ResourceSchedule` instead keeps a short list of future reservations
per resource and places each new transmission into the earliest idle gap at
or after its arrival time.  Old reservations are pruned lazily, so the list
stays small (it only spans the maximum latency of an in-flight request).
"""

from __future__ import annotations

import bisect
from typing import List


class ResourceSchedule:
    """Earliest-gap reservation schedule for one shared resource."""

    __slots__ = ("_starts", "_ends", "total_busy")

    #: Reservations ending this many cycles before the earliest possible new
    #: arrival can safely be discarded.  The slack must exceed the maximum
    #: amount by which requests can arrive out of order (bounded by the
    #: worst-case memory latency plus the perfect-prefetch lead time).
    PRUNE_SLACK = 8192.0

    #: Pruning is *triggered* only once the oldest reservation has aged past
    #: twice the slack (hysteresis): reservations older than the slack can
    #: never influence a placement, so retaining them a while longer is free,
    #: and batching the discards halves the bookkeeping on the reserve hot
    #: path.  Each prune still discards down to ``PRUNE_SLACK``.
    PRUNE_TRIGGER = 16384.0

    def __init__(self) -> None:
        self._starts: List[float] = []
        self._ends: List[float] = []
        #: Total busy time ever reserved (for utilisation statistics).
        self.total_busy: float = 0.0

    # ------------------------------------------------------------------
    def reserve(self, arrival: float, duration: float) -> float:
        """Reserve ``duration`` units at the earliest idle time >= ``arrival``.

        Returns the start time of the reservation.  ``duration`` of zero
        returns ``arrival`` without reserving anything.

        Internally, reservations that touch exactly (one starts the instant
        the previous ends — the serialise-behind case) are coalesced into a
        single busy interval.  A zero-width gap can never hold a future
        reservation, so coalescing leaves every placement decision
        unchanged while keeping the interval lists short: saturated
        resources would otherwise accumulate hundreds of back-to-back
        entries inside the prune window, turning each mid-list insert into
        a long memmove.
        """
        if duration <= 0:
            return arrival
        self.total_busy += duration
        starts, ends = self._starts, self._ends
        if ends and ends[0] < arrival - self.PRUNE_TRIGGER:
            self._prune(arrival)
        n = len(ends)
        if n == 0 or arrival >= ends[-1]:
            # Fast path: the resource is idle at (and after) the arrival
            # time, which is the common case for mostly time-ordered
            # traffic.  Equivalent to the general search below.
            if n and arrival == ends[-1]:
                ends[-1] = arrival + duration
            else:
                starts.append(arrival)
                ends.append(arrival + duration)
            return arrival
        start = arrival
        position = bisect.bisect_left(ends, arrival)
        while position < n:
            if starts[position] - start >= duration:
                break                      # fits in the gap before this one
            end_here = ends[position]
            if end_here > start:
                start = end_here
            position += 1
        # The new busy interval is [start, start + duration); every interval
        # before ``position`` ends at or before ``start`` and every interval
        # from ``position`` on starts at or after ``start + duration``, so
        # ``position`` is the insertion point.  Coalesce with exact-touch
        # neighbours instead of inserting where possible.
        end = start + duration
        touches_prev = position > 0 and ends[position - 1] == start
        if position < n and starts[position] == end:
            if touches_prev:
                # Bridges the two neighbouring intervals: merge all three.
                ends[position - 1] = ends[position]
                del starts[position]
                del ends[position]
            else:
                starts[position] = start
        elif touches_prev:
            ends[position - 1] = end
        else:
            starts.insert(position, start)
            ends.insert(position, end)
        return start

    def next_free(self, arrival: float) -> float:
        """Earliest time at or after ``arrival`` with no reservation active."""
        for start, end in zip(self._starts, self._ends):
            if start <= arrival < end:
                return end
        return arrival

    def busy_time(self) -> float:
        """Total time ever reserved on this resource."""
        return self.total_busy

    # ------------------------------------------------------------------
    def _prune(self, arrival: float) -> None:
        cutoff = arrival - self.PRUNE_SLACK
        if not self._ends or self._ends[0] >= cutoff:
            return
        keep = bisect.bisect_left(self._ends, cutoff)
        if keep:
            del self._starts[:keep]
            del self._ends[:keep]

    def reset(self) -> None:
        self._starts.clear()
        self._ends.clear()
        self.total_busy = 0.0

    def __len__(self) -> int:
        return len(self._starts)
