"""Trace-driven multicore timing simulator substrate."""

from repro.sim.config import SystemConfig
from repro.sim.trace import (
    KIND_BY_CODE,
    KIND_CODES,
    OP_COMPUTE,
    OP_LOAD,
    OP_STORE,
    OP_SW_PREFETCH,
    AccessKind,
    Compute,
    MemRef,
    SwPrefetch,
    Trace,
    TraceBuilder,
)
from repro.sim.stats import CoreStats, SystemStats
from repro.sim.system import System, SimulationResult, build_system, run_workload

__all__ = [
    "AccessKind",
    "Compute",
    "CoreStats",
    "KIND_BY_CODE",
    "KIND_CODES",
    "MemRef",
    "OP_COMPUTE",
    "OP_LOAD",
    "OP_STORE",
    "OP_SW_PREFETCH",
    "SimulationResult",
    "SwPrefetch",
    "System",
    "SystemConfig",
    "SystemStats",
    "Trace",
    "TraceBuilder",
    "build_system",
    "run_workload",
]
