"""Trace-driven multicore timing simulator substrate."""

from repro.sim.config import SystemConfig
from repro.sim.trace import AccessKind, Compute, MemRef, SwPrefetch, Trace
from repro.sim.stats import CoreStats, SystemStats
from repro.sim.system import System, SimulationResult, build_system, run_workload

__all__ = [
    "AccessKind",
    "Compute",
    "CoreStats",
    "MemRef",
    "SimulationResult",
    "SwPrefetch",
    "System",
    "SystemConfig",
    "SystemStats",
    "Trace",
    "build_system",
    "run_workload",
]
