"""Per-core memory trace representation (columnar encoding).

Workloads do not run as native programs inside the simulator; instead they
emit, per core, a trace that captures the instruction and memory behaviour
of the kernel.  Conceptually a trace is a sequence of three entry types:

* :class:`Compute` — a run of non-memory instructions.
* :class:`MemRef` — one load or store, tagged with the access *kind* so that
  the miss breakdown of the paper's Figure 1 / Figure 2 can be reproduced.
* :class:`SwPrefetch` — a software prefetch instruction, used only by the
  "Software Prefetching" configuration (Mowry-style compiler insertion).

Every memory-touching entry carries the program counter of the instruction
that produced it, because both the stream prefetcher and IMP associate
patterns with PCs (Section 3.3.1 of the paper).

Storage layout
--------------

Traces routinely hold hundreds of thousands of dynamic entries per core, so
storing one Python object per entry (the original design) dominated both the
memory footprint and the run time of ``System.run``.  A :class:`Trace` now
stores six parallel ``array('q')`` columns::

    op    opcode (OP_COMPUTE / OP_LOAD / OP_STORE / OP_SW_PREFETCH)
    pc    program counter            (0 for compute runs)
    addr  byte address               (0 for compute runs)
    size  access size in bytes       (0 for compute runs)
    aux   ops for compute runs, the AccessKind code for loads/stores,
          overhead_ops for software prefetches
    lead  non-memory ops executed immediately before this row's instruction

``TraceBuilder`` folds a run of compute ops into the *lead* column of the
next memory-touching row (the ubiquitous compute-then-load pattern then
costs one row instead of two); a standalone ``OP_COMPUTE`` row appears only
for a trailing compute run or via the object-level ``append`` API.

Core models iterate the columns directly and dispatch on the integer opcode;
the object forms (:class:`MemRef` & co.) are materialised on demand by the
``entries`` property / iteration for tests and offline analysis only — a
row with a non-zero *lead* expands to a :class:`Compute` entry followed by
the row's own entry, so the object view is unchanged from the original
representation.  ``len(trace)`` counts entries (not rows); ``num_rows`` has
the row count.

Summary counts (instruction count, memory references, per-kind reference
counts) are maintained incrementally on append, so the per-core overhead
accounting of Figure 10 no longer rescans the trace.
"""

from __future__ import annotations

import enum
from array import array
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Union


class AccessKind(enum.Enum):
    """Classification of a memory reference, used for attribution only.

    The timing model never looks at the kind; it exists so that statistics
    can be broken down exactly the way the paper's motivation figures do.
    """

    #: Sequential read of an index array ``B[i]`` (captured by stream pf).
    INDEX = "index"
    #: Irregular access ``A[B[i]]`` — the pattern IMP targets.
    INDIRECT = "indirect"
    #: Other streaming/strided accesses (e.g. row pointers, output arrays).
    STREAM = "stream"
    #: Everything else (stack, scalars, hash computations, ...).
    OTHER = "other"


#: Integer opcodes stored in the ``op`` column.
OP_COMPUTE = 0
OP_LOAD = 1
OP_STORE = 2
OP_SW_PREFETCH = 3

#: AccessKind <-> small-integer codes stored in the ``aux`` column.
KIND_BY_CODE = tuple(AccessKind)
KIND_CODES = {kind: code for code, kind in enumerate(KIND_BY_CODE)}
NUM_KINDS = len(KIND_BY_CODE)


@dataclass(frozen=True)
class MemRef:
    """A single load or store executed by a core."""

    pc: int
    addr: int
    size: int = 8
    is_write: bool = False
    kind: AccessKind = AccessKind.OTHER

    @property
    def is_read(self) -> bool:
        return not self.is_write


@dataclass(frozen=True)
class Compute:
    """A run of ``ops`` back-to-back non-memory instructions."""

    ops: int = 1


@dataclass(frozen=True)
class SwPrefetch:
    """A software prefetch instruction targeting ``addr``.

    ``overhead_ops`` models the extra address-computation instructions a
    compiler must emit for an indirect prefetch (compute ``i + delta``, load
    ``B[i + delta]``, scale and add) — the instruction-overhead effect shown
    in Figure 10 of the paper.
    """

    pc: int
    addr: int
    overhead_ops: int = 3


TraceEntry = Union[MemRef, Compute, SwPrefetch]


class Trace:
    """The instruction/memory trace of a single core (columnar storage)."""

    __slots__ = ("core_id", "op", "pc", "addr", "size", "aux", "lead",
                 "_instruction_count", "_mem_ref_count", "_kind_counts",
                 "_entry_count")

    def __init__(self, core_id: int,
                 entries: Optional[Iterable[TraceEntry]] = None) -> None:
        self.core_id = core_id
        self.op = array("q")
        self.pc = array("q")
        self.addr = array("q")
        self.size = array("q")
        self.aux = array("q")
        self.lead = array("q")
        self._instruction_count = 0
        self._mem_ref_count = 0
        self._kind_counts = [0] * NUM_KINDS
        self._entry_count = 0
        if entries:
            self.extend(entries)

    # ------------------------------------------------------------------
    # Raw (columnar) appends — the hot path used by TraceBuilder
    # ------------------------------------------------------------------
    def append_compute(self, ops: int) -> None:
        self.op.append(OP_COMPUTE)
        self.pc.append(0)
        self.addr.append(0)
        self.size.append(0)
        self.aux.append(ops)
        self.lead.append(0)
        self._instruction_count += ops
        self._entry_count += 1

    def append_mem_ref(self, pc: int, addr: int, size: int, is_write: bool,
                       kind_code: int, lead_ops: int = 0) -> None:
        self.op.append(OP_STORE if is_write else OP_LOAD)
        self.pc.append(pc)
        self.addr.append(addr)
        self.size.append(size)
        self.aux.append(kind_code)
        self.lead.append(lead_ops)
        self._instruction_count += 1 + lead_ops
        self._mem_ref_count += 1
        self._kind_counts[kind_code] += 1
        self._entry_count += 2 if lead_ops else 1

    def append_sw_prefetch(self, pc: int, addr: int, overhead_ops: int,
                           lead_ops: int = 0) -> None:
        self.op.append(OP_SW_PREFETCH)
        self.pc.append(pc)
        self.addr.append(addr)
        self.size.append(0)
        self.aux.append(overhead_ops)
        self.lead.append(lead_ops)
        self._instruction_count += 1 + overhead_ops + lead_ops
        self._entry_count += 2 if lead_ops else 1

    # ------------------------------------------------------------------
    # Object-level API (compatibility with the original representation)
    # ------------------------------------------------------------------
    def append(self, entry: TraceEntry) -> None:
        if type(entry) is Compute:
            self.append_compute(entry.ops)
        elif type(entry) is MemRef:
            self.append_mem_ref(entry.pc, entry.addr, entry.size,
                                entry.is_write, KIND_CODES[entry.kind])
        elif type(entry) is SwPrefetch:
            self.append_sw_prefetch(entry.pc, entry.addr, entry.overhead_ops)
        else:
            raise TypeError(f"unsupported trace entry {entry!r}")

    def extend(self, entries: Iterable[TraceEntry]) -> None:
        for entry in entries:
            self.append(entry)

    def _row_entries(self, row: int) -> Iterator[TraceEntry]:
        """Materialise the entry object(s) encoded by one row."""
        lead = self.lead[row]
        if lead:
            yield Compute(lead)
        op = self.op[row]
        if op == OP_COMPUTE:
            yield Compute(self.aux[row])
        elif op == OP_SW_PREFETCH:
            yield SwPrefetch(pc=self.pc[row], addr=self.addr[row],
                             overhead_ops=self.aux[row])
        else:
            yield MemRef(pc=self.pc[row], addr=self.addr[row],
                         size=self.size[row], is_write=(op == OP_STORE),
                         kind=KIND_BY_CODE[self.aux[row]])

    def entry_at(self, position: int) -> TraceEntry:
        """Materialise the entry object at ``position`` (slow path)."""
        return self.entries[position]

    @property
    def entries(self) -> List[TraceEntry]:
        """Materialised entry objects (slow path — tests / analysis only)."""
        return list(self)

    @property
    def num_rows(self) -> int:
        """Number of storage rows (<= number of entries)."""
        return len(self.op)

    def __iter__(self) -> Iterator[TraceEntry]:
        for row in range(len(self.op)):
            yield from self._row_entries(row)

    def __len__(self) -> int:
        return self._entry_count

    # ------------------------------------------------------------------
    # Summary helpers (used by workload tests and Figure 10)
    # ------------------------------------------------------------------
    @property
    def instruction_count(self) -> int:
        """Total dynamic instruction count represented by the trace.

        Maintained incrementally on append — O(1), not a trace rescan.
        """
        return self._instruction_count

    @property
    def memory_reference_count(self) -> int:
        """Number of demand loads/stores in the trace (cached, O(1))."""
        return self._mem_ref_count

    def count_by_kind(self) -> dict:
        """Return the number of memory references per :class:`AccessKind`."""
        return {kind: self._kind_counts[code]
                for code, kind in enumerate(KIND_BY_CODE)}


class TraceBuilder:
    """Convenience builder that coalesces consecutive compute operations.

    The fluent API is unchanged from the object-per-entry design, so the
    workload generators did not have to change.  Rows are buffered in plain
    Python lists (the cheapest append available) and converted to the
    trace's ``array('q')`` columns in one bulk pass at :meth:`build`;
    pending compute ops are folded into the *lead* column of the next
    memory-touching row.
    """

    __slots__ = ("_core_id", "_pending_ops", "_op", "_pc", "_addr", "_size",
                 "_aux", "_lead", "_instruction_count", "_mem_ref_count",
                 "_kind_counts", "_entry_count", "_built")

    def __init__(self, core_id: int) -> None:
        self._core_id = core_id
        self._pending_ops = 0
        self._op: List[int] = []
        self._pc: List[int] = []
        self._addr: List[int] = []
        self._size: List[int] = []
        self._aux: List[int] = []
        self._lead: List[int] = []
        self._instruction_count = 0
        self._mem_ref_count = 0
        self._kind_counts = [0] * NUM_KINDS
        self._entry_count = 0
        self._built: Optional[Trace] = None

    def compute(self, ops: int = 1) -> "TraceBuilder":
        """Add ``ops`` non-memory instructions."""
        if ops > 0:
            if self._built is not None:
                raise RuntimeError("TraceBuilder is finished: build() was "
                                   "already called, further entries would "
                                   "be silently lost")
            self._pending_ops += ops
        return self

    def _append_row(self, op: int, pc: int, addr: int, size: int,
                    aux: int) -> None:
        if self._built is not None:
            raise RuntimeError("TraceBuilder is finished: build() was "
                               "already called, further entries would be "
                               "silently lost")
        lead = self._pending_ops
        if lead:
            self._pending_ops = 0
            self._entry_count += 1
        self._op.append(op)
        self._pc.append(pc)
        self._addr.append(addr)
        self._size.append(size)
        self._aux.append(aux)
        self._lead.append(lead)
        self._entry_count += 1
        self._instruction_count += lead

    def load(self, pc: int, addr: int, *, size: int = 8,
             kind: AccessKind = AccessKind.OTHER) -> "TraceBuilder":
        """Add a load instruction."""
        kind_code = KIND_CODES[kind]
        self._append_row(OP_LOAD, pc, addr, size, kind_code)
        self._instruction_count += 1
        self._mem_ref_count += 1
        self._kind_counts[kind_code] += 1
        return self

    def store(self, pc: int, addr: int, *, size: int = 8,
              kind: AccessKind = AccessKind.OTHER) -> "TraceBuilder":
        """Add a store instruction."""
        kind_code = KIND_CODES[kind]
        self._append_row(OP_STORE, pc, addr, size, kind_code)
        self._instruction_count += 1
        self._mem_ref_count += 1
        self._kind_counts[kind_code] += 1
        return self

    def sw_prefetch(self, pc: int, addr: int, *, overhead_ops: int = 3) -> "TraceBuilder":
        """Add a software prefetch instruction."""
        self._append_row(OP_SW_PREFETCH, pc, addr, 0, overhead_ops)
        self._instruction_count += 1 + overhead_ops
        return self

    def build(self) -> Trace:
        """Finish the trace and return it (idempotent)."""
        if self._built is not None:
            return self._built
        if self._pending_ops:
            # Trailing compute run gets its own row.
            self._op.append(OP_COMPUTE)
            self._pc.append(0)
            self._addr.append(0)
            self._size.append(0)
            self._aux.append(self._pending_ops)
            self._lead.append(0)
            self._instruction_count += self._pending_ops
            self._entry_count += 1
            self._pending_ops = 0
        trace = Trace(core_id=self._core_id)
        trace.op = array("q", self._op)
        trace.pc = array("q", self._pc)
        trace.addr = array("q", self._addr)
        trace.size = array("q", self._size)
        trace.aux = array("q", self._aux)
        trace.lead = array("q", self._lead)
        trace._instruction_count = self._instruction_count
        trace._mem_ref_count = self._mem_ref_count
        trace._kind_counts = list(self._kind_counts)
        trace._entry_count = self._entry_count
        self._built = trace
        return trace
