"""Per-core memory trace representation.

Workloads do not run as native programs inside the simulator; instead they
emit, per core, a list of trace entries that captures the instruction and
memory behaviour of the kernel:

* :class:`Compute` — a run of non-memory instructions.
* :class:`MemRef` — one load or store, tagged with the access *kind* so that
  the miss breakdown of the paper's Figure 1 / Figure 2 can be reproduced.
* :class:`SwPrefetch` — a software prefetch instruction, used only by the
  "Software Prefetching" configuration (Mowry-style compiler insertion).

Every memory-touching entry carries the program counter of the instruction
that produced it, because both the stream prefetcher and IMP associate
patterns with PCs (Section 3.3.1 of the paper).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Union


class AccessKind(enum.Enum):
    """Classification of a memory reference, used for attribution only.

    The timing model never looks at the kind; it exists so that statistics
    can be broken down exactly the way the paper's motivation figures do.
    """

    #: Sequential read of an index array ``B[i]`` (captured by stream pf).
    INDEX = "index"
    #: Irregular access ``A[B[i]]`` — the pattern IMP targets.
    INDIRECT = "indirect"
    #: Other streaming/strided accesses (e.g. row pointers, output arrays).
    STREAM = "stream"
    #: Everything else (stack, scalars, hash computations, ...).
    OTHER = "other"


@dataclass(frozen=True)
class MemRef:
    """A single load or store executed by a core."""

    pc: int
    addr: int
    size: int = 8
    is_write: bool = False
    kind: AccessKind = AccessKind.OTHER

    @property
    def is_read(self) -> bool:
        return not self.is_write


@dataclass(frozen=True)
class Compute:
    """A run of ``ops`` back-to-back non-memory instructions."""

    ops: int = 1


@dataclass(frozen=True)
class SwPrefetch:
    """A software prefetch instruction targeting ``addr``.

    ``overhead_ops`` models the extra address-computation instructions a
    compiler must emit for an indirect prefetch (compute ``i + delta``, load
    ``B[i + delta]``, scale and add) — the instruction-overhead effect shown
    in Figure 10 of the paper.
    """

    pc: int
    addr: int
    overhead_ops: int = 3


TraceEntry = Union[MemRef, Compute, SwPrefetch]


@dataclass
class Trace:
    """The instruction/memory trace of a single core."""

    core_id: int
    entries: List[TraceEntry] = field(default_factory=list)

    def append(self, entry: TraceEntry) -> None:
        self.entries.append(entry)

    def extend(self, entries: Iterable[TraceEntry]) -> None:
        self.entries.extend(entries)

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    # ------------------------------------------------------------------
    # Summary helpers (used by workload tests and Figure 10)
    # ------------------------------------------------------------------
    @property
    def instruction_count(self) -> int:
        """Total dynamic instruction count represented by the trace."""
        total = 0
        for entry in self.entries:
            if isinstance(entry, Compute):
                total += entry.ops
            elif isinstance(entry, MemRef):
                total += 1
            else:  # SwPrefetch
                total += 1 + entry.overhead_ops
        return total

    @property
    def memory_reference_count(self) -> int:
        """Number of demand loads/stores in the trace."""
        return sum(1 for entry in self.entries if isinstance(entry, MemRef))

    def count_by_kind(self) -> dict:
        """Return the number of memory references per :class:`AccessKind`."""
        counts = {kind: 0 for kind in AccessKind}
        for entry in self.entries:
            if isinstance(entry, MemRef):
                counts[entry.kind] += 1
        return counts


class TraceBuilder:
    """Convenience builder that coalesces consecutive compute operations."""

    def __init__(self, core_id: int) -> None:
        self._trace = Trace(core_id=core_id)
        self._pending_ops = 0

    def compute(self, ops: int = 1) -> "TraceBuilder":
        """Add ``ops`` non-memory instructions."""
        if ops > 0:
            self._pending_ops += ops
        return self

    def _flush(self) -> None:
        if self._pending_ops:
            self._trace.append(Compute(self._pending_ops))
            self._pending_ops = 0

    def load(self, pc: int, addr: int, *, size: int = 8,
             kind: AccessKind = AccessKind.OTHER) -> "TraceBuilder":
        """Add a load instruction."""
        self._flush()
        self._trace.append(MemRef(pc=pc, addr=addr, size=size,
                                  is_write=False, kind=kind))
        return self

    def store(self, pc: int, addr: int, *, size: int = 8,
              kind: AccessKind = AccessKind.OTHER) -> "TraceBuilder":
        """Add a store instruction."""
        self._flush()
        self._trace.append(MemRef(pc=pc, addr=addr, size=size,
                                  is_write=True, kind=kind))
        return self

    def sw_prefetch(self, pc: int, addr: int, *, overhead_ops: int = 3) -> "TraceBuilder":
        """Add a software prefetch instruction."""
        self._flush()
        self._trace.append(SwPrefetch(pc=pc, addr=addr, overhead_ops=overhead_ops))
        return self

    def build(self) -> Trace:
        """Finish the trace and return it."""
        self._flush()
        return self._trace
