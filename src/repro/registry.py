"""Plugin registries: the component architecture of the reproduction.

Every pluggable component family — prefetchers, DRAM models, workloads and
experiment modes — is catalogued in a named :class:`Registry`.  Each entry
carries a factory, a one-line description (surfaced by ``repro list``) and,
where applicable, the configuration class the factory consumes.  Adding a
component is a one-file change: define it, call ``register`` (usually via
the decorator form) in the module that defines it, and every consumer — the
system builder, ``experiment_config``, the sweep engine, scenario files and
the CLI — picks it up by name.

The registries themselves live here so that any module can import them
without creating an import cycle: this module imports nothing from the rest
of the package.  Registration happens in the modules that define the
components, which the registry imports lazily on first lookup (the
``populate`` module list).

Factory contracts
-----------------

* **prefetchers** — ``factory(core_id, mem_image, imp_config,
  stream_config, ghb_config) -> PrefetcherBase``.  Factories accept the
  full keyword set and ignore what they do not need (declare ``**_``).
* **dram** — ``factory(config, n_controllers, traffic) -> DramModel``.
* **workloads** — the workload class itself; called with the plain
  ``spec_params()`` keyword arguments.
* **modes** — ``factory(config, imp_config) -> (SystemConfig, prefetcher
  name, Optional[IMPConfig], software_prefetch)``; the resolver applied by
  :func:`repro.experiments.configs.experiment_config`.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple


class RegistryError(ValueError):
    """An unknown name was looked up in a registry.

    Subclasses :class:`ValueError` so call sites that historically raised
    (and tests that expect) ``ValueError`` keep working; the message always
    lists the valid registered names.
    """

    def __init__(self, kind: str, name: object, valid: Sequence[str]) -> None:
        self.kind = kind
        self.name = name
        self.valid = tuple(valid)
        choices = ", ".join(self.valid) if self.valid else "<none registered>"
        super().__init__(
            f"unknown {kind} {name!r}; valid {kind}s: {choices}")


@dataclass(frozen=True)
class RegistryEntry:
    """One registered component."""

    name: str
    factory: Callable
    description: str = ""
    #: Configuration class the factory consumes (``None`` when it takes
    #: plain keyword arguments); used by documentation and scenario
    #: validation, not by the factory call itself.
    config_cls: Optional[type] = None
    #: Free-form classification tags (e.g. ``("paper",)`` for the seven
    #: evaluated applications).
    tags: Tuple[str, ...] = field(default_factory=tuple)
    #: Optional host-availability probe.  Most components exist wherever the
    #: package does and leave this ``None``; entries with a host-dependent
    #: implementation (e.g. the compiled NoC kernel, present only where its
    #: extension builds) supply a zero-argument callable.  Availability
    #: affects *display* (``repro list``, ``GET /v1/registries``) and
    #: resolution-time fallback — never registration, name validation or
    #: RunSpec digests, so specs naming an unavailable entry stay portable.
    available: Optional[Callable[[], bool]] = None

    def is_available(self) -> bool:
        """Whether this entry's implementation works on this host."""
        return self.available is None or bool(self.available())


class Registry:
    """A named component catalogue.

    ``populate`` lists modules whose import registers this registry's stock
    entries; they are imported lazily on first access so that the registry
    module stays dependency-free (and importable from anywhere).
    """

    def __init__(self, kind: str,
                 populate: Sequence[str] = ()) -> None:
        self.kind = kind
        self._populate = tuple(populate)
        self._populated = not self._populate
        self._populating = False
        self._entries: Dict[str, RegistryEntry] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, name: str, factory: Optional[Callable] = None, *,
                 description: str = "", config_cls: Optional[type] = None,
                 tags: Sequence[str] = (), replace: bool = False,
                 available: Optional[Callable[[], bool]] = None):
        """Register ``factory`` under ``name``.

        Usable directly (``registry.register("x", make_x, ...)``) or as a
        decorator (``@registry.register("x", description=...)``).  Duplicate
        names are an error unless ``replace=True`` (for tests and
        user overrides).
        """
        def _add(factory: Callable) -> Callable:
            # During populate, duplicates are overwritten silently: a
            # populate module that failed mid-import leaves its earlier
            # registrations behind, and the retried import must not trip
            # over them (it would mask the real ImportError).
            if (not replace and not self._populating
                    and name in self._entries):
                raise ValueError(
                    f"{self.kind} {name!r} is already registered; "
                    f"pass replace=True to override")
            self._entries[name] = RegistryEntry(
                name=name, factory=factory, description=description,
                config_cls=config_cls, tags=tuple(tags),
                available=available)
            return factory

        if factory is None:
            return _add
        return _add(factory)

    def unregister(self, name: str) -> None:
        """Remove an entry (primarily for tests)."""
        self._entries.pop(name, None)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def _ensure_populated(self) -> None:
        if self._populated:
            return
        # Mark populated up front so registrations triggered during the
        # imports (which may look the registry up re-entrantly) don't
        # recurse; roll back on failure so the next lookup retries and
        # surfaces the real ImportError instead of an empty registry.
        self._populated = True
        self._populating = True
        try:
            for module in self._populate:
                importlib.import_module(module)
        except BaseException:
            self._populated = False
            raise
        finally:
            self._populating = False

    def get(self, name: str) -> RegistryEntry:
        """Look up an entry; unknown names raise a :class:`RegistryError`
        listing every valid choice."""
        self._ensure_populated()
        try:
            return self._entries[name]
        except KeyError:
            raise RegistryError(self.kind, name, self.names()) from None

    def names(self) -> List[str]:
        """Registered names, in registration order."""
        self._ensure_populated()
        return list(self._entries)

    def entries(self) -> List[RegistryEntry]:
        """Registered entries, in registration order."""
        self._ensure_populated()
        return list(self._entries.values())

    def __contains__(self, name: object) -> bool:
        self._ensure_populated()
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        self._ensure_populated()
        return iter(list(self._entries))

    def __len__(self) -> int:
        self._ensure_populated()
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Registry({self.kind!r}, {len(self._entries)} entries)"


# ----------------------------------------------------------------------
# The named registries
# ----------------------------------------------------------------------
#: Hardware prefetchers attachable to a cache level.  Stock entries:
#: ``none``, ``stream``, ``ghb`` (registered by :mod:`repro.prefetchers`)
#: and ``imp`` (registered by :mod:`repro.core.imp`).
PREFETCHERS = Registry("prefetcher",
                       populate=("repro.prefetchers", "repro.core.imp"))

#: DRAM timing models (registered by :mod:`repro.memory.dram`).
DRAM_MODELS = Registry("DRAM model", populate=("repro.memory.dram",))

#: Workload generators (registered by :mod:`repro.workloads`).
WORKLOADS = Registry("workload", populate=("repro.workloads",))

#: Named experiment modes — the paper's Section 5.4 configurations plus any
#: user-registered ones (registered by :mod:`repro.experiments.modes`).
MODES = Registry("experiment mode", populate=("repro.experiments.modes",))

#: NoC link-reservation kernel backends (registered by
#: :mod:`repro.noc.kernel`).  Factory contract: ``factory(hop_latency)``
#: returns an object implementing the kernel API documented there
#: (``route_reserver`` / ``links`` / ``busy_time`` / ``intervals`` /
#: ``reset``).
NOC_KERNELS = Registry("NoC kernel", populate=("repro.noc.kernel",))

#: Sweep execution backends (registered by
#: :mod:`repro.experiments.backends`).  Factory contract: ``factory()``
#: returns a :class:`repro.experiments.backends.SweepBackend` — an object
#: with ``configure(shards)`` and ``execute(engine, misses, results,
#: workload_lookup, failures)``.  Every backend is contractually
#: bit-identical to ``serial`` (the equivalence suite enforces it), and
#: the backend choice never enters a RunSpec digest.
SWEEP_BACKENDS = Registry("sweep backend",
                          populate=("repro.experiments.backends",))

#: Every registry, keyed by the name ``repro list`` shows them under.
ALL_REGISTRIES: Dict[str, Registry] = {
    "prefetchers": PREFETCHERS,
    "dram-models": DRAM_MODELS,
    "workloads": WORKLOADS,
    "modes": MODES,
    "noc-kernels": NOC_KERNELS,
    "sweep-backends": SWEEP_BACKENDS,
}


__all__ = [
    "ALL_REGISTRIES",
    "DRAM_MODELS",
    "MODES",
    "NOC_KERNELS",
    "PREFETCHERS",
    "Registry",
    "RegistryEntry",
    "RegistryError",
    "SWEEP_BACKENDS",
    "WORKLOADS",
]
