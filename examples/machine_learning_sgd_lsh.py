#!/usr/bin/env python3
"""Machine-learning scenario: SGD collaborative filtering and LSH search.

Two of the paper's machine-learning workloads side by side:

* **SGD** gathers and scatters 16-byte feature rows for the user and the
  item of every rating — two separate indirect patterns with coefficient 16
  (shift 4), plus enough floating-point work to be compute-bound.
* **LSH** filters candidate lists by gathering dataset rows — many short
  indirect bursts, the pattern the paper reports as hardest to time well.

The example compares the baseline, software prefetching and IMP for both,
and reports the instruction overhead software prefetching pays (Figure 10).

Run with::

    python examples/machine_learning_sgd_lsh.py
"""

from repro import run_workload
from repro.experiments import scaled_config
from repro.workloads import LSHWorkload, SGDWorkload


def run_one(name, workload, config) -> None:
    base = run_workload(workload, config, prefetcher="stream")
    sw = run_workload(workload, config, prefetcher="stream",
                      software_prefetch=True, sw_prefetch_distance=8)
    imp = run_workload(workload, config, prefetcher="imp")

    base_instr = base.stats.total_instructions
    print(f"\n{name}")
    print(f"{'config':12s} {'cycles':>10s} {'speedup':>8s} "
          f"{'coverage':>9s} {'instr. overhead':>16s}")
    print("-" * 60)
    for label, result in (("Base", base), ("SW Pref", sw), ("IMP", imp)):
        print(f"{label:12s} {result.runtime_cycles:10d} "
              f"{base.runtime_cycles / result.runtime_cycles:8.2f} "
              f"{result.stats.coverage:9.2f} "
              f"{result.stats.total_instructions / base_instr:16.2f}")


def main() -> None:
    config = scaled_config(n_cores=16)
    run_one("SGD collaborative filtering (4096 users x 4096 items)",
            SGDWorkload(n_users=4096, n_items=4096, n_ratings=16384, seed=5),
            config)
    run_one("LSH nearest-neighbour filtering (8192 points, 4 tables)",
            LSHWorkload(n_points=8192, n_queries=256, seed=5),
            config)


if __name__ == "__main__":
    main()
