#!/usr/bin/env python3
"""Graph analytics scenario: pagerank on a power-law graph.

Pagerank is the paper's flagship graph workload: scanning each vertex's
neighbour list produces an index stream (``col_idx``), and both the rank
array and the out-degree array are accessed indirectly through it — a
*multi-way* indirect pattern (Listing 2 in the paper).

The example runs the paper's main configurations (Section 5.4) on one graph
and reports the Figure 9-style normalised throughput, plus a look inside
IMP's Prefetch Table to show the two detected ways.

Run with::

    python examples/graph_analytics_pagerank.py
"""

from repro import IMPConfig, run_workload
from repro.experiments import scaled_config
from repro.workloads import PagerankWorkload


def main() -> None:
    config = scaled_config(n_cores=16)
    workload = PagerankWorkload(n_vertices=4096, avg_degree=8, seed=7)

    results = {
        "Ideal": run_workload(workload, config.as_ideal(), prefetcher="none"),
        "PerfPref": run_workload(workload, config.as_perfect_prefetch(),
                                 prefetcher="none"),
        "Base": run_workload(workload, config, prefetcher="stream"),
        "SW Pref": run_workload(workload, config, prefetcher="stream",
                                software_prefetch=True, sw_prefetch_distance=8),
        "IMP": run_workload(workload, config, prefetcher="imp"),
        "IMP+Partial": run_workload(workload,
                                    config.with_partial(noc=True, dram=True),
                                    prefetcher="imp",
                                    imp_config=IMPConfig(partial_enabled=True)),
    }

    reference = results["PerfPref"]
    print("Pagerank, 16 cores  (throughput normalised to Perfect Prefetching)")
    print(f"{'config':14s} {'cycles':>10s} {'norm.thrpt':>11s} "
          f"{'coverage':>9s} {'L1 miss rate':>13s}")
    print("-" * 62)
    for name, result in results.items():
        miss_rate = (result.stats.total_l1_misses
                     / max(1, result.stats.total_mem_accesses))
        print(f"{name:14s} {result.runtime_cycles:10d} "
              f"{result.normalized_throughput(reference):11.3f} "
              f"{result.stats.coverage:9.2f} {miss_rate:13.3f}")

    imp_result = results["IMP"]
    print(f"\nIMP speedup over Base: "
          f"{imp_result.speedup_over(results['Base']):.2f}x")

    # Inspect core 0's Prefetch Table: the rank array (8-byte elements,
    # shift 3) and the out-degree array (4-byte elements, shift 2) share the
    # same index stream -> one primary entry plus one second-way child.
    imp = imp_result.imps[0]
    print("\nDetected indirect patterns on core 0:")
    for entry in imp.pt.enabled_entries():
        print(f"  entry {entry.entry_id}: type={entry.ind_type.value:11s} "
              f"shift={entry.shift:+d}  BaseAddr={entry.base_addr:#x}  "
              f"prefetches issued={entry.prefetches_issued}")
    print(f"\nNoC traffic:  {imp_result.stats.traffic.noc_bytes / 1024:.0f} KiB"
          f"   DRAM traffic: {imp_result.stats.traffic.dram_bytes / 1024:.0f} KiB")


if __name__ == "__main__":
    main()
