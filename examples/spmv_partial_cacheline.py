#!/usr/bin/env python3
"""Sparse linear algebra scenario: SpMV with partial cacheline accessing.

The HPCG-derived SpMV kernel gathers a dense vector through the column-index
array of a sparse matrix.  Each gather touches only 8 of the 64 bytes of the
cache line it lands on, so fetching full lines wastes NoC and DRAM
bandwidth.  This example shows IMP's Granularity Predictor in action
(Section 4): how the predicted granularity shrinks, and how much NoC/DRAM
traffic partial cacheline accessing saves (the Figure 12 experiment for one
workload).

Run with::

    python examples/spmv_partial_cacheline.py
"""

from repro import IMPConfig, run_workload
from repro.experiments import scaled_config
from repro.workloads import SpMVWorkload


def main() -> None:
    config = scaled_config(n_cores=16)
    workload = SpMVWorkload(nx=12, ny=12, nz=12, seed=3)

    base = run_workload(workload, config, prefetcher="stream")
    imp_full = run_workload(workload, config, prefetcher="imp")
    imp_partial_noc = run_workload(workload, config.with_partial(noc=True),
                                   prefetcher="imp",
                                   imp_config=IMPConfig(partial_enabled=True))
    imp_partial_all = run_workload(workload,
                                   config.with_partial(noc=True, dram=True),
                                   prefetcher="imp",
                                   imp_config=IMPConfig(partial_enabled=True))

    rows = [
        ("Base (stream pf)", base),
        ("IMP, full cachelines", imp_full),
        ("IMP + partial NoC", imp_partial_noc),
        ("IMP + partial NoC+DRAM", imp_partial_all),
    ]
    noc_reference = imp_full.stats.traffic.noc_bytes
    dram_reference = imp_full.stats.traffic.dram_bytes

    print("SpMV (27-point stencil, permuted columns), 16 cores")
    print(f"{'config':24s} {'cycles':>10s} {'NoC KiB':>9s} {'DRAM KiB':>9s} "
          f"{'NoC vs IMP':>11s} {'DRAM vs IMP':>12s}")
    print("-" * 80)
    for name, result in rows:
        traffic = result.stats.traffic
        print(f"{name:24s} {result.runtime_cycles:10d} "
              f"{traffic.noc_bytes / 1024:9.0f} {traffic.dram_bytes / 1024:9.0f} "
              f"{traffic.noc_bytes / max(1, noc_reference):11.2f} "
              f"{traffic.dram_bytes / max(1, dram_reference):12.2f}")

    print(f"\nIMP speedup over Base: {imp_full.speedup_over(base):.2f}x")
    print(f"Partial accessing speedup on top of IMP: "
          f"{imp_partial_all.speedup_over(imp_full):.2f}x")

    # Show what the Granularity Predictor learned on core 0.
    imp = imp_partial_all.imps[0]
    print("\nGranularity Predictor state on core 0:")
    for entry in imp.pt.enabled_entries():
        granularity = imp.gp.granularity_bytes(entry.entry_id)
        print(f"  pattern {entry.entry_id} (shift={entry.shift:+d}): "
              f"prefetch granularity = {granularity} bytes "
              f"({'full line' if granularity == 64 else 'partial'})")


if __name__ == "__main__":
    main()
