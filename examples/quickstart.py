#!/usr/bin/env python3
"""Quickstart: simulate the canonical ``A[B[i]]`` loop with and without IMP.

This is the smallest end-to-end use of the library: build a workload, pick a
platform configuration (Table 1 geometry, scaled caches), run it under the
baseline stream prefetcher and under IMP, and compare runtime, prefetch
coverage and accuracy.

Run with::

    python examples/quickstart.py
"""

from repro import IMPConfig, run_workload
from repro.experiments import scaled_config
from repro.workloads.synthetic import IndirectStreamWorkload


def main() -> None:
    # A 16-core mesh with per-core L1s, a distributed shared L2, ACKwise
    # coherence and DRAM behind diamond-placed memory controllers.
    config = scaled_config(n_cores=16)

    # for i in range(N): load B[i]; load A[B[i]]   -- the pattern IMP targets.
    workload = IndirectStreamWorkload(n_indices=8192, n_data=16384, seed=1)

    ideal = run_workload(workload, config.as_ideal(), prefetcher="none")
    base = run_workload(workload, config, prefetcher="stream")
    imp = run_workload(workload, config, prefetcher="imp",
                       imp_config=IMPConfig())

    print("Configuration            runtime(cycles)   coverage   accuracy")
    print("-" * 64)
    for name, result in (("Ideal (all L1 hits)", ideal),
                         ("Baseline + stream pf", base),
                         ("Baseline + IMP", imp)):
        print(f"{name:24s} {result.runtime_cycles:15d}   "
              f"{result.stats.coverage:8.2f}   {result.stats.accuracy:8.2f}")

    print()
    print(f"IMP speedup over the stream-prefetcher baseline: "
          f"{imp.speedup_over(base):.2f}x")
    detector = imp.imps[0]
    entry = detector.pt.enabled_entries()[0]
    print(f"Detected pattern on core 0: shift={entry.shift} "
          f"(element size {1 << entry.shift} bytes), "
          f"BaseAddr={entry.base_addr:#x}")
    print(f"That BaseAddr is array A's base address: "
          f"{imp.imps[0].mem_image.array('A').base:#x}")


if __name__ == "__main__":
    main()
