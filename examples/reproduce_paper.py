#!/usr/bin/env python3
"""Regenerate every table and figure of the paper's evaluation.

This is the full reproduction driver behind EXPERIMENTS.md: it runs all
seven workloads under the paper's configurations and prints (and saves) the
rows of Figures 1, 2, 9-16 and Table 3 plus the Section 6.4 cost numbers.

By default it uses a reduced workload scale and 16 cores so a laptop-class
machine finishes in a few minutes.  Raise ``--scale`` / add more
``--cores`` for results closer to the paper's operating point (much
slower in pure Python).

All simulations are declared up front and executed through the batched
sweep engine: ``--jobs N`` spreads them over worker processes, and the
persistent result cache (``--cache-dir``, default ``results/cache``)
means a re-run only simulates what changed.

Run with::

    python examples/reproduce_paper.py --scale 0.35 --cores 16 --jobs 8
    python examples/reproduce_paper.py --scale 1.0 --cores 16 64   # slower
"""

import argparse
from pathlib import Path

from repro.experiments import ExperimentRunner, figures, scaled_config


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.35,
                        help="workload size multiplier (1.0 = repo defaults)")
    parser.add_argument("--cores", type=int, nargs="+", default=[16],
                        help="core counts for Figures 9 and 11")
    parser.add_argument("--output", type=Path,
                        default=Path("results/reproduction_report.txt"))
    parser.add_argument("--skip-sensitivity", action="store_true",
                        help="skip Figures 13-16 (the slowest sweeps)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="sweep worker processes "
                             "(default: $REPRO_JOBS, else serial)")
    parser.add_argument("--cache-dir", default="results/cache",
                        help="persistent result cache (default: "
                             "results/cache); re-runs only simulate "
                             "what changed")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the on-disk result cache")
    args = parser.parse_args()

    primary_cores = args.cores[0]
    runner = ExperimentRunner(scale=args.scale, seed=1,
                              base_config=scaled_config(primary_cores),
                              jobs=args.jobs, cache_dir=args.cache_dir,
                              use_cache=not args.no_cache)
    sections = []

    def emit(title: str, rows) -> None:
        text = f"== {title} ==\n{figures.format_table(rows)}\n"
        print(text)
        sections.append(text)

    # Declare every run the shared-runner figures will need up front, so
    # the whole cross-product executes as one deduplicated (and, with
    # --jobs, parallel) sweep before any figure is rendered.
    names = [name for name in figures.FIGURE_REQUESTS
             if not (args.skip_sensitivity
                     and name in ("fig14", "fig15", "fig16"))]
    figures.prefetch_figures(runner, names, args.cores)

    emit(f"Figure 1: L1 miss breakdown ({primary_cores} cores)",
         figures.fig01_miss_breakdown(runner, primary_cores))
    emit(f"Figure 2: runtime normalised to Ideal ({primary_cores} cores)",
         figures.fig02_motivation(runner, primary_cores))
    for n_cores, rows in figures.fig09_performance(
            runner, core_counts=args.cores).items():
        emit(f"Figure 9: normalised throughput ({n_cores} cores)", rows)
    emit(f"Table 3: prefetch effectiveness ({primary_cores} cores)",
         figures.table3_effectiveness(runner, primary_cores))
    emit(f"Figure 10: software prefetching instruction overhead",
         figures.fig10_sw_overhead(runner, primary_cores))
    for n_cores, rows in figures.fig11_partial(
            runner, core_counts=args.cores).items():
        emit(f"Figure 11: partial cacheline accessing ({n_cores} cores)", rows)
    emit(f"Figure 12: traffic with partial accessing ({primary_cores} cores)",
         figures.fig12_traffic(runner, primary_cores))

    if not args.skip_sensitivity:
        emit("Figure 13: in-order vs out-of-order cores",
             figures.fig13_ooo(n_cores=primary_cores, scale=args.scale,
                               jobs=args.jobs, cache_dir=args.cache_dir,
                               use_cache=not args.no_cache))
        emit("Figure 14: PT size sensitivity",
             figures.fig14_pt_size(runner, primary_cores))
        emit("Figure 15: IPD size sensitivity",
             figures.fig15_ipd_size(runner, primary_cores))
        emit("Figure 16: prefetch distance sensitivity",
             figures.fig16_prefetch_distance(runner, primary_cores))

    cost = figures.sec64_hardware_cost()
    emit("Section 6.4: hardware cost",
         [{"metric": key, "value": value} for key, value in cost.items()])

    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text("\n".join(sections))
    print(f"Full report written to {args.output}")


if __name__ == "__main__":
    main()
